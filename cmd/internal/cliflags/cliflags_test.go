package cliflags

import (
	"flag"
	"io"
	"testing"
)

func parse(t *testing.T, args ...string) *Common {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	c := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRegisterDefaults(t *testing.T) {
	c := parse(t)
	if c.Parallel != 0 || c.Queue != "" || c.Nodes != 0 || c.CPUProfile != "" || c.MemProfile != "" {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	if _, err := c.QueueKind(); err != nil {
		t.Fatalf("default queue rejected: %v", err)
	}
	if err := c.ValidateNodes(); err != nil {
		t.Fatalf("default nodes rejected: %v", err)
	}
}

func TestRegisterParsesShared(t *testing.T) {
	c := parse(t, "-parallel", "4", "-queue", "ladder", "-nodes", "96")
	if c.Parallel != 4 || c.Queue != "ladder" || c.Nodes != 96 {
		t.Fatalf("parsed %+v", c)
	}
	kind, err := c.QueueKind()
	if err != nil || string(kind) != "ladder" {
		t.Fatalf("QueueKind = %q, %v", kind, err)
	}
}

func TestValidation(t *testing.T) {
	if _, err := parse(t, "-queue", "btree").QueueKind(); err == nil {
		t.Error("bad queue accepted")
	}
	if err := parse(t, "-nodes", "-3").ValidateNodes(); err == nil {
		t.Error("negative nodes accepted")
	}
}
