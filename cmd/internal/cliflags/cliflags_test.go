package cliflags

import (
	"flag"
	"io"
	"testing"

	"repro/internal/obs"
)

func parse(t *testing.T, args ...string) *Common {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	c := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRegisterDefaults(t *testing.T) {
	c := parse(t)
	if c.Parallel != 0 || c.Queue != "" || c.Nodes != 0 || c.CPUProfile != "" || c.MemProfile != "" {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	if _, err := c.QueueKind(); err != nil {
		t.Fatalf("default queue rejected: %v", err)
	}
	if err := c.ValidateNodes(); err != nil {
		t.Fatalf("default nodes rejected: %v", err)
	}
}

func TestRegisterParsesShared(t *testing.T) {
	c := parse(t, "-parallel", "4", "-queue", "ladder", "-nodes", "96")
	if c.Parallel != 4 || c.Queue != "ladder" || c.Nodes != 96 {
		t.Fatalf("parsed %+v", c)
	}
	kind, err := c.QueueKind()
	if err != nil || string(kind) != "ladder" {
		t.Fatalf("QueueKind = %q, %v", kind, err)
	}
}

func TestValidation(t *testing.T) {
	if _, err := parse(t, "-queue", "btree").QueueKind(); err == nil {
		t.Error("bad queue accepted")
	}
	if err := parse(t, "-nodes", "-3").ValidateNodes(); err == nil {
		t.Error("negative nodes accepted")
	}
}

// TestProgressMeter: off by default (nil, so callers skip the option),
// a live meter when -progress is set.
func TestProgressMeter(t *testing.T) {
	if parse(t).ProgressMeter("x") != nil {
		t.Error("progress meter on without -progress")
	}
	if parse(t, "-progress").ProgressMeter("x") == nil {
		t.Error("-progress produced no meter")
	}
}

// TestStartMetrics: a no-op without -metrics-addr, a live scrape
// endpoint with one.
func TestStartMetrics(t *testing.T) {
	snap := func() obs.Snapshot { return obs.Snapshot{} }
	stop, err := parse(t).StartMetrics(snap)
	if err != nil {
		t.Fatalf("no-op metrics server errored: %v", err)
	}
	stop()

	stop, err = parse(t, "-metrics-addr", "127.0.0.1:0").StartMetrics(snap)
	if err != nil {
		t.Fatalf("metrics server failed to start: %v", err)
	}
	stop()

	if _, err := parse(t, "-metrics-addr", "256.0.0.1:bad").StartMetrics(snap); err == nil {
		t.Error("bad -metrics-addr accepted")
	}
}
