package cliflags

import (
	"flag"
	"io"
	"testing"

	"repro/internal/netdist"
	"repro/internal/obs"
)

func parse(t *testing.T, args ...string) *Common {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	c := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRegisterDefaults(t *testing.T) {
	c := parse(t)
	if c.Parallel != 0 || c.Queue != "" || c.Nodes != 0 || c.CPUProfile != "" || c.MemProfile != "" {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	if _, err := c.QueueKind(); err != nil {
		t.Fatalf("default queue rejected: %v", err)
	}
	if err := c.ValidateNodes(); err != nil {
		t.Fatalf("default nodes rejected: %v", err)
	}
}

func TestRegisterParsesShared(t *testing.T) {
	c := parse(t, "-parallel", "4", "-queue", "ladder", "-nodes", "96")
	if c.Parallel != 4 || c.Queue != "ladder" || c.Nodes != 96 {
		t.Fatalf("parsed %+v", c)
	}
	kind, err := c.QueueKind()
	if err != nil || string(kind) != "ladder" {
		t.Fatalf("QueueKind = %q, %v", kind, err)
	}
}

func TestValidation(t *testing.T) {
	if _, err := parse(t, "-queue", "btree").QueueKind(); err == nil {
		t.Error("bad queue accepted")
	}
	if err := parse(t, "-nodes", "-3").ValidateNodes(); err == nil {
		t.Error("negative nodes accepted")
	}
}

// TestProgressMeter: off by default (nil, so callers skip the option),
// a live meter when -progress is set.
func TestProgressMeter(t *testing.T) {
	if parse(t).ProgressMeter("x") != nil {
		t.Error("progress meter on without -progress")
	}
	if parse(t, "-progress").ProgressMeter("x") == nil {
		t.Error("-progress produced no meter")
	}
}

// TestStartMetrics: a no-op without -metrics-addr, a live scrape
// endpoint with one.
func TestStartMetrics(t *testing.T) {
	snap := func() obs.Snapshot { return obs.Snapshot{} }
	stop, err := parse(t).StartMetrics(snap)
	if err != nil {
		t.Fatalf("no-op metrics server errored: %v", err)
	}
	stop()

	stop, err = parse(t, "-metrics-addr", "127.0.0.1:0").StartMetrics(snap)
	if err != nil {
		t.Fatalf("metrics server failed to start: %v", err)
	}
	stop()

	if _, err := parse(t, "-metrics-addr", "256.0.0.1:bad").StartMetrics(snap); err == nil {
		t.Error("bad -metrics-addr accepted")
	}
}

// TestResolveBackend: the transport flag matrix — default pool,
// -connect exclusivity, cache wrapping, and bad values.
func TestResolveBackend(t *testing.T) {
	b, stop, err := parse(t).ResolveBackend()
	if err != nil || b != nil {
		t.Errorf("default: backend = %v, err = %v, want nil/nil", b, err)
	}
	if stop != nil {
		stop()
	}

	for _, tc := range [][]string{
		{"-connect", "x:1", "-backend", "proc"},
		{"-connect", "x:1", "-workers", "2"},
		{"-connect", " , "},
		{"-cache-mb", "-1"},
		{"-backend", "quantum"},
	} {
		if _, _, err := parse(t, tc...).ResolveBackend(); err == nil {
			t.Errorf("%v accepted", tc)
		}
	}

	// -cache-mb alone wraps a private pool in a cache.
	b, stop, err = parse(t, "-cache-mb", "64").ResolveBackend()
	if err != nil || b == nil {
		t.Fatalf("cache-only: backend = %v, err = %v", b, err)
	}
	if _, ok := b.(*netdist.Cache); !ok {
		t.Errorf("cache-only backend is %T, want *netdist.Cache", b)
	}
	stop()

	// -connect builds a network backend (dialing is lazy, so no server
	// needs to exist here); -cache-mb stacks the cache on top of it.
	b, stop, err = parse(t, "-connect", "127.0.0.1:1", "-cache-mb", "64").ResolveBackend()
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	c, ok := b.(*netdist.Cache)
	if !ok {
		t.Fatalf("connect+cache backend is %T, want *netdist.Cache", b)
	}
	if _, ok := c.Unwrap().(*netdist.NetBackend); !ok {
		t.Errorf("cache wraps %T, want *netdist.NetBackend", c.Unwrap())
	}
	stop()
}
