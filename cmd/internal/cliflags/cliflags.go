// Package cliflags holds the flag plumbing shared by the simulation
// CLIs (cmd/sdasim, cmd/sdascn): the worker-pool bound, the event-queue
// selector, the execution backend, the topology override, and the
// profiling switches — one registration, one validation, one profiling
// starter, instead of each command repeating them.
package cliflags

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/distrib"
	"repro/internal/failpoint"
	"repro/internal/netdist"
	"repro/internal/obs"
	"repro/internal/profiling"
	"repro/internal/session"
	"repro/internal/sim"
)

// Common carries the shared flag values after parsing.
type Common struct {
	// Parallel is the worker-pool bound (-parallel): 0 = all cores,
	// 1 = sequential. Results are identical at every setting.
	Parallel int
	// Queue names the event-queue implementation (-queue): "" or
	// "auto", "heap", "ladder". Results are byte-identical across kinds.
	Queue string
	// Nodes overrides the node count k (-nodes); 0 keeps the default.
	Nodes int
	// Backend selects the execution backend (-backend): "pool" runs
	// replications on in-process workers, "proc" fans sub-shards out
	// across worker processes. Results are byte-identical either way.
	Backend string
	// Workers is the -backend proc worker-process count (-workers).
	Workers int
	// ShardServer puts the command in shard-worker mode (-shard-server):
	// serve the distrib protocol on stdin/stdout and exit. The proc
	// backend spawns its workers by re-executing the current binary with
	// this flag.
	ShardServer bool
	// CPUProfile and MemProfile are the profiling output paths.
	CPUProfile, MemProfile string
	// Progress turns on the live progress line (-progress): completed
	// count, rate, and ETA on stderr, redrawn in place.
	Progress bool
	// MetricsAddr, when non-empty (-metrics-addr), serves /metrics
	// (Prometheus text), /debug/pprof/* and /debug/vars on this address
	// for the duration of the run.
	MetricsAddr string
	// Failpoints is the chaos spec (-failpoints) armed before the run;
	// see package failpoint for the grammar. ArmFailpoints also exports
	// it through the environment so -backend proc workers inherit it.
	Failpoints string
	// Heartbeat and WorkerTimeout tune -backend proc supervision: the
	// liveness-probe interval and the silence deadline after which a
	// worker counts as hung. Zero keeps the defaults (1s / 10s).
	Heartbeat     time.Duration
	WorkerTimeout time.Duration
	// Hedge scales the straggler threshold for speculative re-dispatch
	// (0 = default 4, negative = off).
	Hedge float64
	// ServeWorkers puts the command in network-worker mode
	// (-serve-workers addr): serve shard workers over TCP on this
	// address until interrupted.
	ServeWorkers string
	// Connect runs shards on remote TCP workers (-connect
	// host:port[,host:port...]) instead of local processes.
	Connect string
	// CacheMB bounds the deterministic shard-result cache (-cache-mb);
	// 0 disables caching.
	CacheMB int
}

// Register installs the shared flags on fs and returns the value
// holder; read it after fs.Parse.
func Register(fs *flag.FlagSet) *Common {
	c := &Common{}
	fs.IntVar(&c.Parallel, "parallel", 0,
		"worker-pool size: 0 = all cores, 1 = sequential (results are identical either way)")
	fs.StringVar(&c.Queue, "queue", "",
		"event-queue implementation: auto (default; heap, ladder-promoted at scale), heap, or ladder — results are byte-identical, only speed differs")
	fs.IntVar(&c.Nodes, "nodes", 0,
		"override the node count k for every replication (default: the run's own setting, Table 1: 6)")
	fs.StringVar(&c.Backend, "backend", "pool",
		"execution backend: pool (in-process worker pool) or proc (multi-process shard workers; output is byte-identical)")
	fs.IntVar(&c.Workers, "workers", 0,
		"worker-process count for -backend proc (0 = default 2)")
	fs.BoolVar(&c.ShardServer, "shard-server", false,
		"serve as a shard-worker process on stdin/stdout and exit (spawned by -backend proc; not for interactive use)")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "",
		"write a CPU profile of the run to this file (inspect with `go tool pprof`)")
	fs.StringVar(&c.MemProfile, "memprofile", "",
		"write an allocation profile taken at exit to this file")
	fs.BoolVar(&c.Progress, "progress", false,
		"redraw a live progress line on stderr: completed/total, rate, and ETA")
	fs.StringVar(&c.MetricsAddr, "metrics-addr", "",
		"serve /metrics (Prometheus text), /debug/pprof/* and /debug/vars on this address (e.g. 127.0.0.1:9090) for the duration of the run")
	fs.StringVar(&c.Failpoints, "failpoints", "",
		"arm fault-injection sites for a chaos run, e.g. 'seed=42;distrib/worker-loop=kill:p=0.05:max=1' (results stay byte-identical; see internal/failpoint)")
	fs.DurationVar(&c.Heartbeat, "heartbeat", 0,
		"liveness-probe interval for -backend proc workers (0 = default 1s)")
	fs.DurationVar(&c.WorkerTimeout, "worker-timeout", 0,
		"declare a -backend proc worker hung after this much silence and reassign its work (0 = default 10s)")
	fs.Float64Var(&c.Hedge, "hedge", 0,
		"straggler threshold multiplier for speculative re-dispatch under -backend proc (0 = default 4, negative = off; first result wins, results unchanged)")
	fs.StringVar(&c.ServeWorkers, "serve-workers", "",
		"serve shard workers over TCP on this address (e.g. :9400) until interrupted; coordinators attach with -connect (results stay byte-identical)")
	fs.StringVar(&c.Connect, "connect", "",
		"run shards on remote -serve-workers servers (comma-separated host:port list) instead of local processes; unreachable fleets degrade to the in-process pool")
	fs.IntVar(&c.CacheMB, "cache-mb", 0,
		"wrap the backend in a deterministic shard-result cache of this many MiB: repeated (config, seed) work is served from memory, byte-identical (0 = off)")
	return c
}

// ArmFailpoints arms the -failpoints spec (a no-op when empty) and
// exports it through the environment so worker processes spawned by
// -backend proc arm the same chaos. Call it before any backend work —
// including the -shard-server branch, whose process inherited the spec
// from its coordinator's environment at init.
func (c *Common) ArmFailpoints() error {
	if c.Failpoints == "" {
		return nil
	}
	if err := failpoint.Arm(c.Failpoints); err != nil {
		return err
	}
	return os.Setenv(failpoint.EnvVar, c.Failpoints)
}

// QueueKind validates and parses the -queue flag.
func (c *Common) QueueKind() (sim.QueueKind, error) {
	return sim.ParseQueueKind(c.Queue)
}

// ValidateNodes rejects a negative -nodes override.
func (c *Common) ValidateNodes() error {
	if c.Nodes < 0 {
		return fmt.Errorf("-nodes %d, want > 0 (or omit for the default)", c.Nodes)
	}
	return nil
}

// StartProfiling starts the requested profiles and returns the stop
// function to defer. Stop's error (a mem profile that could not be
// written at exit) belongs in the command's exit status.
func (c *Common) StartProfiling() (func() error, error) {
	return profiling.Start(c.CPUProfile, c.MemProfile)
}

// ProgressMeter resolves the -progress flag: nil when off, otherwise a
// live stderr meter labelled label, ready to pass to WithProgress.
func (c *Common) ProgressMeter(label string) func(done, total int) {
	if !c.Progress {
		return nil
	}
	return obs.Progress(os.Stderr, label)
}

// StartMetrics resolves the -metrics-addr flag: a no-op when unset,
// otherwise it serves snapshot on the requested address and announces
// the endpoint on stderr. The returned stop function shuts the server
// down.
func (c *Common) StartMetrics(snapshot func() obs.Snapshot) (func(), error) {
	if c.MetricsAddr == "" {
		return func() {}, nil
	}
	srv, err := obs.NewServer(c.MetricsAddr, snapshot)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "serving metrics on http://%s/metrics\n", srv.Addr())
	return func() { _ = srv.Close() }, nil
}

// ServeShardWorker runs the shard-worker protocol on stdin/stdout until
// the coordinator closes the pipe — the body of -shard-server mode.
func ServeShardWorker() error {
	return distrib.ServeWorker(os.Stdin, os.Stdout)
}

// ProcBackend resolves the -backend/-workers flags: nil means the
// default in-process pool; a non-nil backend is the multi-process
// coordinator (Close it when done). Worker processes re-execute the
// current binary with -shard-server.
func (c *Common) ProcBackend() (*distrib.ProcBackend, error) {
	switch c.Backend {
	case "", "pool":
		if c.Workers != 0 {
			return nil, fmt.Errorf("-workers %d requires -backend proc", c.Workers)
		}
		return nil, nil
	case "proc":
		if c.Workers < 0 {
			return nil, fmt.Errorf("-workers %d, want >= 0", c.Workers)
		}
		return distrib.NewProcBackend(distrib.ProcOptions{
			Workers:       c.Workers,
			Heartbeat:     c.Heartbeat,
			WorkerTimeout: c.WorkerTimeout,
			HedgeFactor:   c.Hedge,
		}), nil
	default:
		return nil, fmt.Errorf("unknown -backend %q (want pool or proc)", c.Backend)
	}
}

// ResolveBackend resolves the full execution-transport flag set —
// -backend/-workers, -connect, -cache-mb — into a session backend plus
// its cleanup. A nil backend means the session's default in-process
// pool; whatever comes back, output is byte-identical.
func (c *Common) ResolveBackend() (session.Backend, func(), error) {
	var inner session.Backend
	closers := []func(){}
	if c.Connect != "" {
		if c.Backend == "proc" {
			return nil, nil, fmt.Errorf("-connect and -backend proc are mutually exclusive")
		}
		if c.Workers != 0 {
			return nil, nil, fmt.Errorf("-workers %d requires -backend proc, not -connect", c.Workers)
		}
		nb, err := netdist.NewBackend(netdist.BackendOptions{
			Addrs:         strings.Split(c.Connect, ","),
			Heartbeat:     c.Heartbeat,
			WorkerTimeout: c.WorkerTimeout,
			HedgeFactor:   c.Hedge,
		})
		if err != nil {
			return nil, nil, err
		}
		inner = nb
		closers = append(closers, func() { nb.Close() })
	} else {
		pb, err := c.ProcBackend()
		if err != nil {
			return nil, nil, err
		}
		if pb != nil {
			inner = pb
			closers = append(closers, func() { pb.Close() })
		}
	}
	if c.CacheMB < 0 {
		return nil, nil, fmt.Errorf("-cache-mb %d, want >= 0", c.CacheMB)
	}
	if c.CacheMB > 0 {
		if inner == nil {
			// The cache needs an explicit inner backend: give it its own
			// pool (the session would otherwise bypass the cache).
			pool := session.NewPool()
			inner = pool
			closers = append(closers, pool.Close)
		}
		inner = netdist.NewCache(inner, int64(c.CacheMB)<<20)
	}
	return inner, func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}, nil
}

// ServeTCPWorkers is the body of -serve-workers mode: serve shard
// workers on addr, announce the bound address on errOut (addr may end
// in :0), and run until SIGINT/SIGTERM.
func ServeTCPWorkers(addr string, errOut io.Writer) error {
	srv, err := netdist.Listen(addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(errOut, "serving shard workers on %s\n", srv.Addr())
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	select {
	case <-sigc:
		_ = srv.Close()
		return <-done
	case err := <-done:
		_ = srv.Close()
		return err
	}
}
