// Command benchcheck turns `go test -bench` output into a small JSON
// document and compares a current run against a committed baseline, so CI
// can fail on throughput or allocation regressions without external
// tooling.
//
// Usage:
//
//	benchcheck -record current.json -runbench [-benchtime 2s]
//	go test -run '^$' -bench ... -benchmem . | benchcheck -record current.json
//	benchcheck -baseline BENCH_pr3.json -current current.json -tolerance 0.20
//
// With -runbench, recording executes the repo's recorded bench set
// itself (the same `go test -bench` invocations CI runs — see
// benchCommands) and parses the output, so a BENCH_pr*.json baseline is
// reproduced with one command instead of hand-assembled pipelines.
// Without it, recording parses benchmark result lines on stdin. Either
// way the output is {"benchmarks": {name: {unit: value}}}. Comparison
// reads the baseline's
// "after" section (the committed post-optimization numbers; a flat
// "benchmarks" map also works) and fails when, for any benchmark present
// in both files:
//
//   - a tasks/s metric drops by more than the tolerance, or
//   - (without tasks/s) ns/op grows by more than the tolerance, or
//   - allocs/op grows by more than the tolerance plus an absolute slack
//     of 2 (so a 0 → 1 blip on a noisy runner does not fail the build,
//     but losing a pooled path does).
//
// -zeroalloc names benchmarks (comma-separated) that must report exactly
// 0 allocs/op in the current run — no tolerance, no slack. The zero-alloc
// hot path is a hard invariant, not a number that may drift.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Metrics maps a unit ("ns/op", "tasks/s", "allocs/op", ...) to its value.
type Metrics map[string]float64

// File is the JSON document benchcheck reads and writes.
type File struct {
	// Note is free-form provenance (machine, date, commit).
	Note string `json:"note,omitempty"`
	// Before optionally records the pre-optimization numbers for
	// documentation; comparison never reads it.
	Before map[string]Metrics `json:"before,omitempty"`
	// After holds the baseline numbers comparisons run against.
	After map[string]Metrics `json:"after,omitempty"`
	// Benchmarks is the flat form -record emits.
	Benchmarks map[string]Metrics `json:"benchmarks,omitempty"`
}

// table returns the map comparisons should use.
func (f *File) table() map[string]Metrics {
	if len(f.After) > 0 {
		return f.After
	}
	return f.Benchmarks
}

func main() {
	var (
		record    = flag.String("record", "", "write recorded benchmark JSON here (parses stdin unless -runbench)")
		runBench  = flag.Bool("runbench", false, "with -record: run the repo's bench set via `go test` instead of reading stdin")
		benchtime = flag.String("benchtime", "2s", "with -runbench: -benchtime passed to `go test`")
		baseline  = flag.String("baseline", "", "baseline JSON to compare against")
		current   = flag.String("current", "", "current JSON (from -record) to check")
		tolerance = flag.Float64("tolerance", 0.20, "allowed relative regression")
		zeroAlloc = flag.String("zeroalloc", "", "comma-separated benchmarks that must report exactly 0 allocs/op")
	)
	flag.Parse()

	switch {
	case *record != "" && *runBench:
		if err := doRunRecord(*record, *benchtime); err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(1)
		}
	case *record != "":
		if err := doRecord(*record); err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(1)
		}
	case *baseline != "" && *current != "":
		ok, err := doCompare(*baseline, *current, *tolerance, splitNames(*zeroAlloc))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(1)
		}
		if !ok {
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// benchCommands returns the `go test` invocations of the repo's
// recorded bench set — the suite every BENCH_pr*.json baseline freezes:
// the whole-system throughput/replication/scaling benchmarks at the
// module root and the isolated event core in internal/sim. The argv
// form keeps the set testable without executing anything.
func benchCommands(benchtime string) [][]string {
	sets := []struct{ pkg, pattern string }{
		{".", "BenchmarkSimulationThroughput|BenchmarkRunReplications|BenchmarkScalingThroughput"},
		{"./internal/sim", "BenchmarkEventCoreScaling"},
	}
	var out [][]string
	for _, s := range sets {
		out = append(out, []string{
			"go", "test", "-run", "^$", "-bench", s.pattern,
			"-benchmem", "-benchtime", benchtime, s.pkg,
		})
	}
	return out
}

// doRunRecord executes the recorded bench set and writes its parsed
// results, making baseline files reproducible with one command.
func doRunRecord(path, benchtime string) error {
	benches := map[string]Metrics{}
	for _, argv := range benchCommands(benchtime) {
		fmt.Println("#", strings.Join(argv, " "))
		cmd := exec.Command(argv[0], argv[1:]...)
		cmd.Stderr = os.Stderr
		pipe, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		if err := cmd.Start(); err != nil {
			return err
		}
		sc := bufio.NewScanner(pipe)
		for sc.Scan() {
			line := sc.Text()
			fmt.Println(line)
			if name, m, ok := ParseBenchLine(line); ok {
				benches[name] = m
			}
		}
		scanErr := sc.Err()
		if err := cmd.Wait(); err != nil {
			return fmt.Errorf("%s: %w", strings.Join(argv, " "), err)
		}
		if scanErr != nil {
			return scanErr
		}
	}
	if len(benches) == 0 {
		return fmt.Errorf("bench set produced no benchmark result lines")
	}
	note := fmt.Sprintf("recorded by benchcheck -runbench, %s %s/%s",
		runtime.Version(), runtime.GOOS, runtime.GOARCH)
	out, err := json.MarshalIndent(&File{Note: note, Benchmarks: benches}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func doRecord(path string) error {
	benches := map[string]Metrics{}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass output through for the CI log
		name, m, ok := ParseBenchLine(line)
		if !ok {
			continue
		}
		benches[name] = m
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark result lines on stdin")
	}
	out, err := json.MarshalIndent(&File{Benchmarks: benches}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// ParseBenchLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkSimulationThroughput  472447  7799 ns/op  3124831 tasks/s  0 B/op  0 allocs/op
//
// returning the benchmark name (with any -cpu suffix trimmed) and its
// metrics. ok is false for non-benchmark lines.
func ParseBenchLine(line string) (string, Metrics, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return "", nil, false // iteration count must follow the name
	}
	m := Metrics{}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		m[fields[i+1]] = v
	}
	if len(m) == 0 {
		return "", nil, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // trim the GOMAXPROCS suffix
		}
	}
	return name, m, true
}

// splitNames parses the -zeroalloc list.
func splitNames(s string) []string {
	var out []string
	for _, name := range strings.Split(s, ",") {
		if name = strings.TrimSpace(name); name != "" {
			out = append(out, name)
		}
	}
	return out
}

func doCompare(basePath, curPath string, tol float64, zeroAlloc []string) (bool, error) {
	base, err := readFile(basePath)
	if err != nil {
		return false, err
	}
	cur, err := readFile(curPath)
	if err != nil {
		return false, err
	}
	baseTab, curTab := base.table(), cur.table()

	names := make([]string, 0, len(baseTab))
	for name := range baseTab {
		names = append(names, name)
	}
	sort.Strings(names)

	ok, compared := true, 0
	for _, name := range names {
		b, c := baseTab[name], curTab[name]
		if c == nil {
			fmt.Printf("SKIP %s: not in current run\n", name)
			continue
		}
		compared++
		fs := failures(b, c, tol)
		for _, f := range fs {
			fmt.Printf("FAIL %s: %s\n", name, f)
			ok = false
		}
		if len(fs) == 0 {
			fmt.Printf("ok   %s\n", name)
		}
	}
	if compared == 0 {
		return false, fmt.Errorf("no benchmarks in common between %s and %s", basePath, curPath)
	}
	// The zero-alloc invariant checks the current run alone: a named
	// benchmark must be present and report exactly 0 allocs/op.
	for _, name := range zeroAlloc {
		c := curTab[name]
		if c == nil {
			fmt.Printf("FAIL %s: -zeroalloc benchmark not in current run\n", name)
			ok = false
			continue
		}
		allocs, have := c["allocs/op"]
		switch {
		case !have:
			fmt.Printf("FAIL %s: no allocs/op metric (run with -benchmem)\n", name)
			ok = false
		case allocs != 0:
			fmt.Printf("FAIL %s: allocs/op %.0f, want exactly 0\n", name, allocs)
			ok = false
		default:
			fmt.Printf("ok   %s: 0 allocs/op\n", name)
		}
	}
	return ok, nil
}

// failures lists the regressions of current c against baseline b.
func failures(b, c Metrics, tol float64) []string {
	var out []string
	if ts, have := b["tasks/s"]; have && ts > 0 {
		if cur := c["tasks/s"]; cur < ts*(1-tol) {
			out = append(out, fmt.Sprintf("tasks/s %.0f -> %.0f (%.1f%% drop, tolerance %.0f%%)",
				ts, cur, 100*(1-cur/ts), 100*tol))
		}
	} else if ns, have := b["ns/op"]; have && ns > 0 {
		if cur := c["ns/op"]; cur > ns*(1+tol) {
			out = append(out, fmt.Sprintf("ns/op %.0f -> %.0f (%.1f%% slower, tolerance %.0f%%)",
				ns, cur, 100*(cur/ns-1), 100*tol))
		}
	}
	if ba, have := b["allocs/op"]; have {
		if cur, haveCur := c["allocs/op"]; haveCur && cur > ba*(1+tol)+2 {
			out = append(out, fmt.Sprintf("allocs/op %.0f -> %.0f (tolerance %.0f%% + 2)",
				ba, cur, 100*tol))
		}
	}
	return out
}

func readFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}
