package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	name, m, ok := ParseBenchLine(
		"BenchmarkSimulationThroughput-8 \t  472447\t      7799 ns/op\t   3124831 tasks/s\t       0 B/op\t       0 allocs/op")
	if !ok {
		t.Fatal("ParseBenchLine rejected a valid line")
	}
	if name != "BenchmarkSimulationThroughput" {
		t.Fatalf("name = %q, want cpu suffix trimmed", name)
	}
	for unit, want := range map[string]float64{
		"ns/op": 7799, "tasks/s": 3124831, "B/op": 0, "allocs/op": 0,
	} {
		if m[unit] != want {
			t.Fatalf("%s = %v, want %v", unit, m[unit], want)
		}
	}
}

func TestParseBenchLineSubBenchmark(t *testing.T) {
	name, m, ok := ParseBenchLine(
		"BenchmarkRunReplications/parallel=1-4   100  12727211 ns/op  76714 B/op  1256 allocs/op")
	if !ok || name != "BenchmarkRunReplications/parallel=1" {
		t.Fatalf("parsed (%q, ok=%v), want sub-benchmark name kept, suffix trimmed", name, ok)
	}
	if m["allocs/op"] != 1256 {
		t.Fatalf("allocs/op = %v, want 1256", m["allocs/op"])
	}
}

func TestParseBenchLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \trepro\t8.644s",
		"BenchmarkBroken no-iteration-count ns/op",
		"cpu: Intel(R) Xeon(R)",
	} {
		if _, _, ok := ParseBenchLine(line); ok {
			t.Fatalf("ParseBenchLine accepted %q", line)
		}
	}
}

func TestFailures(t *testing.T) {
	base := Metrics{"tasks/s": 3000000, "ns/op": 8000, "allocs/op": 0}
	if fs := failures(base, Metrics{"tasks/s": 2900000, "ns/op": 8200, "allocs/op": 1}, 0.2); len(fs) != 0 {
		t.Fatalf("small drift flagged: %v", fs)
	}
	if fs := failures(base, Metrics{"tasks/s": 2000000, "ns/op": 12000, "allocs/op": 0}, 0.2); len(fs) != 1 {
		t.Fatalf("33%% tasks/s drop not flagged exactly once: %v", fs)
	}
	if fs := failures(base, Metrics{"tasks/s": 3000000, "ns/op": 8000, "allocs/op": 50}, 0.2); len(fs) != 1 {
		t.Fatalf("alloc regression not flagged: %v", fs)
	}
	// Without tasks/s, ns/op is the criterion.
	nsOnly := Metrics{"ns/op": 10000, "allocs/op": 100}
	if fs := failures(nsOnly, Metrics{"ns/op": 13000, "allocs/op": 100}, 0.2); len(fs) != 1 {
		t.Fatalf("ns/op regression not flagged: %v", fs)
	}
}
