package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	name, m, ok := ParseBenchLine(
		"BenchmarkSimulationThroughput-8 \t  472447\t      7799 ns/op\t   3124831 tasks/s\t       0 B/op\t       0 allocs/op")
	if !ok {
		t.Fatal("ParseBenchLine rejected a valid line")
	}
	if name != "BenchmarkSimulationThroughput" {
		t.Fatalf("name = %q, want cpu suffix trimmed", name)
	}
	for unit, want := range map[string]float64{
		"ns/op": 7799, "tasks/s": 3124831, "B/op": 0, "allocs/op": 0,
	} {
		if m[unit] != want {
			t.Fatalf("%s = %v, want %v", unit, m[unit], want)
		}
	}
}

func TestParseBenchLineSubBenchmark(t *testing.T) {
	name, m, ok := ParseBenchLine(
		"BenchmarkRunReplications/parallel=1-4   100  12727211 ns/op  76714 B/op  1256 allocs/op")
	if !ok || name != "BenchmarkRunReplications/parallel=1" {
		t.Fatalf("parsed (%q, ok=%v), want sub-benchmark name kept, suffix trimmed", name, ok)
	}
	if m["allocs/op"] != 1256 {
		t.Fatalf("allocs/op = %v, want 1256", m["allocs/op"])
	}
}

func TestParseBenchLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \trepro\t8.644s",
		"BenchmarkBroken no-iteration-count ns/op",
		"cpu: Intel(R) Xeon(R)",
	} {
		if _, _, ok := ParseBenchLine(line); ok {
			t.Fatalf("ParseBenchLine accepted %q", line)
		}
	}
}

func TestFailures(t *testing.T) {
	base := Metrics{"tasks/s": 3000000, "ns/op": 8000, "allocs/op": 0}
	if fs := failures(base, Metrics{"tasks/s": 2900000, "ns/op": 8200, "allocs/op": 1}, 0.2); len(fs) != 0 {
		t.Fatalf("small drift flagged: %v", fs)
	}
	if fs := failures(base, Metrics{"tasks/s": 2000000, "ns/op": 12000, "allocs/op": 0}, 0.2); len(fs) != 1 {
		t.Fatalf("33%% tasks/s drop not flagged exactly once: %v", fs)
	}
	if fs := failures(base, Metrics{"tasks/s": 3000000, "ns/op": 8000, "allocs/op": 50}, 0.2); len(fs) != 1 {
		t.Fatalf("alloc regression not flagged: %v", fs)
	}
	// Without tasks/s, ns/op is the criterion.
	nsOnly := Metrics{"ns/op": 10000, "allocs/op": 100}
	if fs := failures(nsOnly, Metrics{"ns/op": 13000, "allocs/op": 100}, 0.2); len(fs) != 1 {
		t.Fatalf("ns/op regression not flagged: %v", fs)
	}
}

func TestSplitNames(t *testing.T) {
	if got := splitNames(""); got != nil {
		t.Fatalf("splitNames(\"\") = %v, want nil", got)
	}
	got := splitNames("BenchmarkA, BenchmarkB ,,BenchmarkC")
	want := []string{"BenchmarkA", "BenchmarkB", "BenchmarkC"}
	if len(got) != len(want) {
		t.Fatalf("splitNames = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitNames = %v, want %v", got, want)
		}
	}
}

// TestZeroAllocGate drives doCompare end to end: a benchmark within
// tolerance passes the relative checks but fails the -zeroalloc
// invariant the moment allocs/op is nonzero, missing, or the benchmark
// is absent from the current run.
func TestZeroAllocGate(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, f *File) string {
		t.Helper()
		data, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("base.json", &File{Benchmarks: map[string]Metrics{
		"BenchmarkHot": {"tasks/s": 3000000, "allocs/op": 0},
	}})

	cases := []struct {
		name   string
		cur    Metrics
		zero   []string
		wantOK bool
	}{
		{"zero-holds", Metrics{"tasks/s": 2950000, "allocs/op": 0}, []string{"BenchmarkHot"}, true},
		{"one-alloc-fails", Metrics{"tasks/s": 2950000, "allocs/op": 1}, []string{"BenchmarkHot"}, false},
		{"no-benchmem-fails", Metrics{"tasks/s": 2950000}, []string{"BenchmarkHot"}, false},
		{"absent-fails", Metrics{"tasks/s": 2950000, "allocs/op": 0}, []string{"BenchmarkMissing"}, false},
		{"ungated-ok", Metrics{"tasks/s": 2950000, "allocs/op": 1}, nil, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cur := write(tc.name+".json", &File{Benchmarks: map[string]Metrics{
				"BenchmarkHot": tc.cur,
			}})
			ok, err := doCompare(base, cur, 0.2, tc.zero)
			if err != nil {
				t.Fatal(err)
			}
			if ok != tc.wantOK {
				t.Fatalf("doCompare ok = %v, want %v", ok, tc.wantOK)
			}
		})
	}
}

// TestBenchCommandsShape pins the recorded bench set: the -runbench mode
// must run exactly the suite CI's regression gate compares against, with
// -benchmem (the alloc gates need it) and the caller's -benchtime.
func TestBenchCommandsShape(t *testing.T) {
	cmds := benchCommands("7s")
	if len(cmds) != 2 {
		t.Fatalf("bench set has %d commands, want 2", len(cmds))
	}
	wantPatterns := map[string]string{
		".":              "BenchmarkScalingThroughput",
		"./internal/sim": "BenchmarkEventCoreScaling",
	}
	for _, argv := range cmds {
		if argv[0] != "go" || argv[1] != "test" {
			t.Fatalf("command %v is not a go test invocation", argv)
		}
		joined := strings.Join(argv, " ")
		for _, flag := range []string{"-benchmem", "-benchtime 7s", "-run ^$"} {
			if !strings.Contains(joined, flag) {
				t.Errorf("command %q missing %q", joined, flag)
			}
		}
		pkg := argv[len(argv)-1]
		want, ok := wantPatterns[pkg]
		if !ok {
			t.Fatalf("unexpected package %q in bench set", pkg)
		}
		delete(wantPatterns, pkg)
		if !strings.Contains(joined, want) {
			t.Errorf("package %s command %q missing benchmark %s", pkg, joined, want)
		}
	}
	if len(wantPatterns) != 0 {
		t.Fatalf("bench set missing packages: %v", wantPatterns)
	}
}
