// Command sdaserve is the long-running simulation query service: it
// accepts JSON job specs over HTTP, keeps warm sessions keyed by
// configuration fingerprint, serves repeated (config, seed) work from a
// deterministic in-memory shard-result cache, and streams
// per-replication results to each client in seed order.
//
// Usage:
//
//	sdaserve                                    # in-process pool, cache on
//	sdaserve -addr :9433 -cache-mb 512
//	sdaserve -backend proc -workers 3           # local worker processes
//	sdaserve -connect host1:9400,host2:9400     # remote TCP workers
//
// Endpoints:
//
//	POST /run            NDJSON stream: one line per replication
//	                     (index, seed, miss percentages) in seed order,
//	                     then a final aggregate line
//	POST /run?format=csv the merged scenario time-series CSV
//	GET  /healthz        liveness
//	GET  /metrics        Prometheus text, including repro_cache_* and
//	                     (with -connect) repro_net_* series
//
// A job spec looks like:
//
//	{"preset": "burst", "horizon": 20000, "nodes": 6,
//	 "ssp": "LLF", "psp": "DIV-ED", "seed": 1, "reps": 8}
//
// Responses are a pure function of the spec: the same job answered
// fresh, from cache, or by remote workers produces byte-identical
// bodies, so clients may diff and replay them freely.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/cmd/internal/cliflags"
	"repro/internal/netdist"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "sdaserve:", err)
		os.Exit(1)
	}
}

// run is the testable body: it serves until ctx is cancelled, calling
// onReady (when non-nil) with the bound address once accepting.
func run(ctx context.Context, args []string, errOut io.Writer, onReady func(addr string)) error {
	fs := flag.NewFlagSet("sdaserve", flag.ContinueOnError)
	fs.SetOutput(errOut)
	common := cliflags.Register(fs)
	var (
		addr        = fs.String("addr", "127.0.0.1:9433", "HTTP listen address for the query service")
		maxSessions = fs.Int("max-sessions", 0, "bound on warm sessions kept across distinct configurations (0 = default 32)")
		noCache     = fs.Bool("no-cache", false, "disable the shard-result cache (every request simulates)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := common.ArmFailpoints(); err != nil {
		return err
	}
	if common.ShardServer {
		// Worker mode: a -backend proc coordinator re-executed this
		// binary to serve sub-shards over stdin/stdout.
		return cliflags.ServeShardWorker()
	}
	if common.ServeWorkers != "" {
		return cliflags.ServeTCPWorkers(common.ServeWorkers, errOut)
	}

	// The service owns the cache layer, so resolve only the transport
	// here: -cache-mb sizes the service cache instead of wrapping the
	// backend directly.
	cacheBytes := int64(common.CacheMB) << 20
	if *noCache {
		cacheBytes = -1
	}
	common.CacheMB = 0
	backend, closeBackend, err := common.ResolveBackend()
	if err != nil {
		return err
	}
	defer closeBackend()

	svc := netdist.NewService(netdist.ServiceOptions{
		Backend:     backend,
		CacheBytes:  cacheBytes,
		MaxSessions: *maxSessions,
	})
	defer svc.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: svc.Handler()}
	fmt.Fprintf(errOut, "serving simulation queries on http://%s/run\n", ln.Addr())
	if onReady != nil {
		onReady(ln.Addr().String())
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			_ = srv.Close()
		}
		<-done
		return nil
	case err := <-done:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}
