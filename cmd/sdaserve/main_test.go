package main

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// startServe runs the service body on a free port and returns its base
// URL; shutdown and error checking ride on test cleanup.
func startServe(t *testing.T, args ...string) string {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...),
			io.Discard, func(addr string) { ready <- addr })
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("service exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("service never became ready")
	}
	t.Cleanup(func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("run: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("service did not shut down")
		}
	})
	return "http://" + addr
}

func post(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data)
}

// TestServeRoundTrip: the CLI serves deterministic, cache-accelerated
// queries end to end and shuts down cleanly on context cancellation.
func TestServeRoundTrip(t *testing.T) {
	base := startServe(t)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: status %d", resp.StatusCode)
	}

	spec := `{"preset":"burst","horizon":300,"nodes":4,"seed":3,"reps":3}`
	code, first := post(t, base+"/run", spec)
	if code != http.StatusOK {
		t.Fatalf("first run: status %d: %s", code, first)
	}
	code, second := post(t, base+"/run", spec)
	if code != http.StatusOK {
		t.Fatalf("second run: status %d", code)
	}
	if first != second {
		t.Error("repeated job spec returned different bytes")
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"repro_cache_hits_total", "repro_cache_misses_total"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	if strings.Contains(string(metrics), "repro_cache_hits_total 0\n") {
		t.Error("repro_cache_hits_total still 0 after a repeated run")
	}
}

// TestServeNoCache: -no-cache serves identical bytes without a cache
// (every request simulates afresh).
func TestServeNoCache(t *testing.T) {
	base := startServe(t, "-no-cache")
	spec := `{"preset":"burst","horizon":300,"nodes":4,"seed":3,"reps":2}`
	_, first := post(t, base+"/run", spec)
	_, second := post(t, base+"/run", spec)
	if first != second {
		t.Error("uncached runs returned different bytes")
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(metrics), "repro_cache_hits_total") {
		t.Error("cache series rendered with caching disabled")
	}
}

// TestServeBadFlags: flag conflicts fail at startup, not at first
// request.
func TestServeBadFlags(t *testing.T) {
	err := run(context.Background(), []string{"-connect", "x:1", "-backend", "proc"}, io.Discard, nil)
	if err == nil {
		t.Fatal("-connect with -backend proc: err = nil, want error")
	}
}
