// Command sdadl assigns virtual deadlines to a serial-parallel task graph
// and prints the plan — the paper's core operation as a standalone tool.
//
// Usage:
//
//	sdadl -graph "[fetch:1 [scan:2 || rank:3] emit:1]" -deadline 12
//	sdadl -graph "[a b c d]" -deadline 10 -ssp EQF -psp DIV-1
//	sdadl -graph "[a b c d]" -deadline 10 -compare
//
// With -compare, the plan is printed for every built-in SSP strategy so
// their different slack splits are visible side by side.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/task"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sdadl:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sdadl", flag.ContinueOnError)
	var (
		graph    = fs.String("graph", "", "task graph notation, e.g. \"[a:1 [b:2 || c:3] d:1]\"")
		deadline = fs.Float64("deadline", 0, "end-to-end deadline (time units after arrival)")
		arrival  = fs.Float64("arrival", 0, "arrival time (default 0)")
		ssp      = fs.String("ssp", "EQF", "serial strategy: UD, ED, EQS, EQF, EQF-AS<n>")
		psp      = fs.String("psp", "DIV-1", "parallel strategy: UD, DIV-<x>, GF, ADIV<boost>")
		compare  = fs.Bool("compare", false, "print plans for all four SSP strategies")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graph == "" {
		fs.Usage()
		return fmt.Errorf("missing -graph")
	}
	if *deadline <= 0 {
		return fmt.Errorf("-deadline must be positive")
	}
	g, err := task.Parse(*graph)
	if err != nil {
		return err
	}
	pStrat, err := core.ParallelByName(*psp)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "graph: %s\n", g)
	fmt.Fprintf(out, "leaves: %d, critical-path pex: %g, depth: %d\n",
		g.LeafCount(), g.AggregatePex(), g.Depth())
	fmt.Fprintf(out, "arrival %g, deadline %g (end-to-end slack %g)\n\n",
		*arrival, *arrival+*deadline, *deadline-g.AggregatePex())

	serials := []string{*ssp}
	if *compare {
		serials = core.SerialNames()
	}
	for _, name := range serials {
		sStrat, err := core.SerialByName(name)
		if err != nil {
			return err
		}
		a := core.NewAssigner(sStrat, pStrat)
		plan, err := a.Plan(g, *arrival, *arrival+*deadline)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s:\n", a.Name())
		fmt.Fprintf(out, "  %-12s %10s %10s %10s %10s\n", "subtask", "release", "pex", "deadline", "slack")
		for _, p := range plan {
			fmt.Fprintf(out, "  %-12s %10.3f %10.3f %10.3f %10.3f\n",
				p.Leaf.Name, p.Release, p.Leaf.Pex, p.Deadline, p.Deadline-p.Release-p.Leaf.Pex)
		}
		fmt.Fprintln(out)
	}
	return nil
}
