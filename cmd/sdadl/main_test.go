package main

import (
	"strings"
	"testing"
)

func TestRunPlan(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-graph", "[a:1 b:2]", "-deadline", "10", "-ssp", "EQF"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"EQF-DIV-1:", "a", "b", "deadline"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCompare(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-graph", "[a b c]", "-deadline", "9", "-compare"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"UD-", "ED-", "EQS-", "EQF-"} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q", want)
		}
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "missing graph", args: []string{"-deadline", "5"}},
		{name: "bad graph", args: []string{"-graph", "[", "-deadline", "5"}},
		{name: "zero deadline", args: []string{"-graph", "[a]", "-deadline", "0"}},
		{name: "bad ssp", args: []string{"-graph", "[a]", "-deadline", "5", "-ssp", "zz"}},
		{name: "bad psp", args: []string{"-graph", "[a]", "-deadline", "5", "-psp", "zz"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var b strings.Builder
			if err := run(tt.args, &b); err == nil {
				t.Error("run succeeded, want error")
			}
		})
	}
}
