// Command sdascn runs a declarative scenario — time-varying load, node
// faults, alternative demand distributions — against the paper's
// simulation model and emits a per-window time-series CSV (miss ratios,
// lateness, queue lengths).
//
// Usage:
//
//	sdascn -list
//	sdascn -preset burst                        # built-in 3x overload burst
//	sdascn -spec storm.json -reps 8 -parallel 8
//	sdascn -preset outage -ssp EQF -psp DIV-1 -load 0.7 -out series.csv
//	sdascn -preset churn -nodes 1024 -churn-rate 2   # generated per-node faults
//	sdascn -preset burst -backend proc -workers 3    # multi-process execution
//
// The spec file is JSON:
//
//	{
//	  "name": "spike",
//	  "interval": 1000,
//	  "phases": [
//	    {"duration": 20000, "rate": 1},
//	    {"duration": 5000,  "rate": 3},
//	    {"duration": 0,     "rate": 1}
//	  ],
//	  "events": [
//	    {"kind": "outage",   "node": 0, "at": 21000, "duration": 2000},
//	    {"kind": "slowdown", "node": 1, "at": 30000, "duration": 5000, "factor": 0.5}
//	  ],
//	  "demand": {"dist": "pareto", "alpha": 2.5}
//	}
//
// The churn preset is generated rather than hand-written: every node
// gets its own Poisson fault schedule (-churn-rate faults per node on
// average across the run, a -churn-slow fraction of them slowdowns), so
// 1024-node churn runs need no 1024-entry spec file. The schedule is a
// pure function of (-nodes, -seed, churn flags).
//
// The run executes through a repro.Session; replications fan out across
// cores (-parallel: 0 = all cores, 1 = sequential) or, with
// -backend proc, across -workers worker processes speaking the distrib
// shard protocol. The merged CSV is byte-identical at every worker
// count and across backends, which the CI determinism jobs assert.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro"
	"repro/cmd/internal/cliflags"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "sdascn:", err)
		os.Exit(1)
	}
}

// churnPreset is the generated preset name handled outside the static
// preset table.
const churnPreset = "churn"

// progressLabel names the -progress meter after the scenario.
func progressLabel(sc *repro.Scenario) string {
	if name := sc.Name(); name != "" {
		return name
	}
	return "scenario"
}

func run(args []string, out, errOut io.Writer) (retErr error) {
	fs := flag.NewFlagSet("sdascn", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		list      = fs.Bool("list", false, "list built-in scenario presets and exit")
		specPath  = fs.String("spec", "", "path to a JSON scenario spec")
		preset    = fs.String("preset", "", "built-in scenario name (see -list)")
		horizon   = fs.Float64("horizon", 50000, "simulated time units per replication")
		reps      = fs.Int("reps", 2, "independent replications to merge")
		seed      = fs.Uint64("seed", 1, "base random seed (replication i uses seed+i; also seeds -preset churn)")
		load      = fs.Float64("load", 0, "nominal system load (default: Table 1's 0.5)")
		ssp       = fs.String("ssp", "", "serial strategy: UD, ED, EQS, EQF, ... (default UD)")
		psp       = fs.String("psp", "", "parallel strategy: UD, DIV-<x>, GF, ... (default UD)")
		churnRate = fs.Float64("churn-rate", 2, "churn preset: mean faults per node across the run")
		churnSlow = fs.Float64("churn-slow", 0.25, "churn preset: fraction of faults that are slowdowns instead of outages")
		nopool    = fs.Bool("nopool", false, "run on the pure allocation path instead of the pooled one (results are bit-identical)")
		outPath   = fs.String("out", "", "write the CSV here instead of stdout")
		quiet     = fs.Bool("quiet", false, "suppress the summary line on stderr")
		common    = cliflags.Register(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Chaos arms before any backend work — including worker mode, so a
	// directly-started worker and one inheriting the coordinator's
	// environment behave the same.
	if err := common.ArmFailpoints(); err != nil {
		return err
	}
	if common.ShardServer {
		// Worker mode: serve sub-shards over stdin/stdout for a
		// -backend proc coordinator, then exit.
		return cliflags.ServeShardWorker()
	}
	if common.ServeWorkers != "" {
		// Network-worker mode: serve shard workers over TCP for remote
		// -connect coordinators until interrupted.
		return cliflags.ServeTCPWorkers(common.ServeWorkers, errOut)
	}
	stopProf, err := common.StartProfiling()
	if err != nil {
		return err
	}
	// The exit heap profile is written inside stop; a write failure must
	// reach the exit status, not just stderr.
	defer func() {
		if perr := stopProf(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()

	if *list {
		for _, line := range repro.ScenarioPresets() {
			fmt.Fprintln(out, line)
		}
		fmt.Fprintf(out, "%-10s %s\n", churnPreset,
			"generated per-node fault schedules (uses -nodes, -seed, -churn-rate, -churn-slow)")
		return nil
	}
	if (*specPath == "") == (*preset == "") {
		fs.Usage()
		return fmt.Errorf("need exactly one of -spec or -preset (or -list)")
	}
	if *horizon <= 0 {
		return fmt.Errorf("-horizon %v, want > 0", *horizon)
	}
	queueKind, err := common.QueueKind()
	if err != nil {
		return err
	}
	if err := common.ValidateNodes(); err != nil {
		return err
	}

	cfg := repro.BaselineConfig()
	cfg.Horizon = *horizon
	cfg.Seed = *seed
	if *load > 0 {
		cfg.Load = *load
	}
	if common.Nodes > 0 {
		cfg.Nodes = common.Nodes
	}
	if *ssp != "" {
		cfg.SSP = *ssp
	}
	if *psp != "" {
		cfg.PSP = *psp
	}

	var sc *repro.Scenario
	switch {
	case *specPath != "":
		data, rerr := os.ReadFile(*specPath)
		if rerr != nil {
			return rerr
		}
		sc, err = repro.ParseScenario(data)
	case *preset == churnPreset:
		sc, err = repro.ChurnScenario(cfg.Nodes, *churnRate, *horizon,
			repro.ChurnOptions{Seed: *seed, SlowdownFrac: *churnSlow})
	default:
		sc, err = repro.ScenarioPreset(*preset, *horizon)
	}
	if err != nil {
		return err
	}

	backend, closeBackend, err := common.ResolveBackend()
	if err != nil {
		return err
	}
	defer closeBackend()
	sessOpts := []repro.RunOption{repro.WithParallelism(common.Parallel), repro.WithEventQueue(queueKind)}
	if *nopool {
		sessOpts = append(sessOpts, repro.WithPoolingDisabled())
	}
	var sess *repro.Session
	if backend != nil {
		sess = repro.NewSessionWithBackend(backend, sessOpts...)
	} else {
		sess = repro.NewSession(sessOpts...)
	}
	defer sess.Close()

	// -metrics-addr scrapes the session live; counters advance as
	// replications finish, gauges (in-flight, pool) reflect the moment.
	stopMetrics, err := common.StartMetrics(sess.Snapshot)
	if err != nil {
		return err
	}
	defer stopMetrics()

	var runOpts []repro.RunOption
	if pm := common.ProgressMeter(progressLabel(sc)); pm != nil {
		runOpts = append(runOpts, repro.WithProgress(pm))
	}
	res, err := sess.RunScenario(context.Background(), cfg, sc, *reps, runOpts...)
	if err != nil {
		return err
	}

	var csv strings.Builder
	if err := res.Series.WriteCSV(&csv); err != nil {
		return err
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(csv.String()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s (%d windows)\n", *outPath, res.Series.Len())
	} else {
		fmt.Fprint(out, csv.String())
	}
	if !*quiet {
		name := sc.Name()
		if name == "" {
			name = "scenario"
		}
		fmt.Fprintf(errOut, "%s: %s-%s, load %g, %d reps: MD_local %.2f%% ±%.2f, MD_global %.2f%% ±%.2f\n",
			name, cfg.SSP, cfg.PSP, cfg.Load, *reps,
			res.LocalMD.Mean, res.LocalMD.HalfCI, res.GlobalMD.Mean, res.GlobalMD.HalfCI)
	}
	return nil
}
