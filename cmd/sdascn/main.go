// Command sdascn runs a declarative scenario — time-varying load, node
// faults, alternative demand distributions — against the paper's
// simulation model and emits a per-window time-series CSV (miss ratios,
// lateness, queue lengths).
//
// Usage:
//
//	sdascn -list
//	sdascn -preset burst                        # built-in 3x overload burst
//	sdascn -spec storm.json -reps 8 -parallel 8
//	sdascn -preset outage -ssp EQF -psp DIV-1 -load 0.7 -out series.csv
//
// The spec file is JSON:
//
//	{
//	  "name": "spike",
//	  "interval": 1000,
//	  "phases": [
//	    {"duration": 20000, "rate": 1},
//	    {"duration": 5000,  "rate": 3},
//	    {"duration": 0,     "rate": 1}
//	  ],
//	  "events": [
//	    {"kind": "outage",   "node": 0, "at": 21000, "duration": 2000},
//	    {"kind": "slowdown", "node": 1, "at": 30000, "duration": 5000, "factor": 0.5}
//	  ],
//	  "demand": {"dist": "pareto", "alpha": 2.5}
//	}
//
// Replications fan out across cores (-parallel: 0 = all cores, 1 =
// sequential); the merged CSV is byte-identical at every worker count,
// which the CI determinism job asserts.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro"
	"repro/internal/profiling"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "sdascn:", err)
		os.Exit(1)
	}
}

func run(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("sdascn", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		list     = fs.Bool("list", false, "list built-in scenario presets and exit")
		specPath = fs.String("spec", "", "path to a JSON scenario spec")
		preset   = fs.String("preset", "", "built-in scenario name (see -list)")
		horizon  = fs.Float64("horizon", 50000, "simulated time units per replication")
		reps     = fs.Int("reps", 2, "independent replications to merge")
		seed     = fs.Uint64("seed", 1, "base random seed (replication i uses seed+i)")
		parallel = fs.Int("parallel", 0, "worker-pool size: 0 = all cores, 1 = sequential (output is identical either way)")
		load     = fs.Float64("load", 0, "nominal system load (default: Table 1's 0.5)")
		nodes    = fs.Int("nodes", 0, "node count k (default: Table 1's 6); scenarios whose fault events target node ids >= k are rejected")
		queue    = fs.String("queue", "", "event-queue implementation: auto (default; heap, ladder-promoted at scale), heap, or ladder — output is byte-identical, only speed differs")
		ssp      = fs.String("ssp", "", "serial strategy: UD, ED, EQS, EQF, ... (default UD)")
		psp      = fs.String("psp", "", "parallel strategy: UD, DIV-<x>, GF, ... (default UD)")
		outPath  = fs.String("out", "", "write the CSV here instead of stdout")
		quiet    = fs.Bool("quiet", false, "suppress the summary line on stderr")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile of the run to this file (inspect with `go tool pprof`)")
		memProf  = fs.String("memprofile", "", "write an allocation profile taken at exit to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer stopProf()

	if *list {
		for _, line := range repro.ScenarioPresets() {
			fmt.Fprintln(out, line)
		}
		return nil
	}
	if (*specPath == "") == (*preset == "") {
		fs.Usage()
		return fmt.Errorf("need exactly one of -spec or -preset (or -list)")
	}
	if *horizon <= 0 {
		return fmt.Errorf("-horizon %v, want > 0", *horizon)
	}

	var sc *repro.Scenario
	if *specPath != "" {
		data, rerr := os.ReadFile(*specPath)
		if rerr != nil {
			return rerr
		}
		sc, err = repro.ParseScenario(data)
	} else {
		sc, err = repro.ScenarioPreset(*preset, *horizon)
	}
	if err != nil {
		return err
	}

	queueKind, err := sim.ParseQueueKind(*queue)
	if err != nil {
		return err
	}

	cfg := repro.BaselineConfig()
	cfg.Horizon = *horizon
	cfg.Seed = *seed
	cfg.EventQueue = queueKind
	if *load > 0 {
		cfg.Load = *load
	}
	if *nodes > 0 {
		cfg.Nodes = *nodes
	}
	if *ssp != "" {
		cfg.SSP = *ssp
	}
	if *psp != "" {
		cfg.PSP = *psp
	}

	res, err := repro.RunScenario(cfg, sc, *reps, *parallel)
	if err != nil {
		return err
	}

	var csv strings.Builder
	if err := res.Series.WriteCSV(&csv); err != nil {
		return err
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(csv.String()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s (%d windows)\n", *outPath, res.Series.Len())
	} else {
		fmt.Fprint(out, csv.String())
	}
	if !*quiet {
		name := sc.Name()
		if name == "" {
			name = "scenario"
		}
		fmt.Fprintf(errOut, "%s: %s-%s, load %g, %d reps: MD_local %.2f%% ±%.2f, MD_global %.2f%% ±%.2f\n",
			name, cfg.SSP, cfg.PSP, cfg.Load, *reps,
			res.LocalMD.Mean, res.LocalMD.HalfCI, res.GlobalMD.Mean, res.GlobalMD.HalfCI)
	}
	return nil
}
