package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var out, errOut strings.Builder
	err := run(args, &out, &errOut)
	return out.String(), errOut.String(), err
}

func TestListPresets(t *testing.T) {
	out, _, err := runCmd(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"burst", "ramp", "outage", "heavytail", "storm"} {
		if !strings.Contains(out, want) {
			t.Errorf("preset list missing %q:\n%s", want, out)
		}
	}
}

func TestPresetRunEmitsCSV(t *testing.T) {
	out, errOut, err := runCmd(t, "-preset", "burst", "-horizon", "3000", "-reps", "2")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.HasPrefix(lines[0], "t_start,t_end,") {
		t.Fatalf("missing CSV header:\n%s", out)
	}
	if len(lines) != 1+50 {
		t.Errorf("windows = %d, want 50 (Horizon/50 default interval)", len(lines)-1)
	}
	if !strings.Contains(errOut, "MD_local") || !strings.Contains(errOut, "burst") {
		t.Errorf("summary line missing:\n%s", errOut)
	}
}

// TestQueueFlagIsByteIdentical pins the event-queue contract at the
// CLI: the same scenario emits byte-identical time-series CSV under
// -queue heap, -queue ladder, and the auto default, including at a node
// count large enough for auto to promote mid-run.
func TestQueueFlagIsByteIdentical(t *testing.T) {
	var want string
	for _, queue := range []string{"heap", "ladder", "auto"} {
		out, _, err := runCmd(t, "-preset", "burst", "-horizon", "2000",
			"-reps", "2", "-nodes", "96", "-quiet", "-queue", queue)
		if err != nil {
			t.Fatalf("queue=%s: %v", queue, err)
		}
		if want == "" {
			want = out
			continue
		}
		if out != want {
			t.Fatalf("-queue %s CSV differs from heap output", queue)
		}
	}
}

func TestSpecFileRun(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "spec.json")
	content := `{
		"name": "spike",
		"interval": 500,
		"phases": [
			{"duration": 1000, "rate": 1},
			{"duration": 500, "rate": 2, "endRate": 3},
			{"duration": 0, "rate": 1}
		],
		"events": [{"kind": "outage", "node": 0, "at": 1200, "duration": 300}],
		"demand": {"dist": "pareto", "alpha": 2.2}
	}`
	if err := os.WriteFile(spec, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	outFile := filepath.Join(dir, "series.csv")
	out, _, err := runCmd(t, "-spec", spec, "-horizon", "2500", "-reps", "1", "-out", outFile, "-quiet")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "wrote ") {
		t.Errorf("stdout = %q, want wrote-file notice", out)
	}
	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(data), "\n"); lines != 1+5 {
		t.Errorf("csv lines = %d, want header + 5 windows (2500/500)", lines)
	}
}

// TestParallelFlagIsByteIdentical is the CLI-level half of the
// determinism acceptance criterion (the CI job repeats it end to end).
func TestParallelFlagIsByteIdentical(t *testing.T) {
	csv := func(parallel string) string {
		t.Helper()
		out, _, err := runCmd(t, "-preset", "burst", "-horizon", "2500", "-reps", "4",
			"-parallel", parallel, "-quiet")
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := csv("1")
	for _, p := range []string{"0", "8"} {
		if got := csv(p); got != want {
			t.Errorf("-parallel %s output differs from -parallel 1", p)
		}
	}
}

func TestStrategyAndLoadOverrides(t *testing.T) {
	_, errOut, err := runCmd(t, "-preset", "burst", "-horizon", "2000", "-reps", "1",
		"-ssp", "EQF", "-psp", "DIV-1", "-load", "0.7", "-nodes", "4")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut, "EQF-DIV-1") || !strings.Contains(errOut, "load 0.7") {
		t.Errorf("summary does not reflect overrides:\n%s", errOut)
	}
}

func TestErrors(t *testing.T) {
	dir := t.TempDir()
	badSpec := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badSpec, []byte(`{"phases": [{"duration": -1, "rate": 1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		args []string
	}{
		{name: "no scenario", args: []string{}},
		{name: "both spec and preset", args: []string{"-spec", "x.json", "-preset", "burst"}},
		{name: "unknown preset", args: []string{"-preset", "nope"}},
		{name: "missing spec file", args: []string{"-spec", filepath.Join(dir, "absent.json")}},
		{name: "invalid spec", args: []string{"-spec", badSpec}},
		{name: "bad horizon", args: []string{"-preset", "burst", "-horizon", "-5"}},
		{name: "bad strategy", args: []string{"-preset", "burst", "-ssp", "WAT", "-horizon", "1000"}},
		{name: "event beyond nodes", args: []string{"-preset", "outage", "-nodes", "1", "-horizon", "1000"}},
		{name: "bad queue", args: []string{"-preset", "burst", "-queue", "btree", "-horizon", "1000"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, _, err := runCmd(t, tt.args...); err == nil {
				t.Error("run succeeded, want error")
			}
		})
	}
}

// TestChurnPresetGeneratesAndRuns: the generated churn preset runs
// end-to-end, is listed, deterministic for one seed, and different for
// another.
func TestChurnPreset(t *testing.T) {
	list, _, err := runCmd(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(list, "churn") {
		t.Fatalf("-list missing churn preset:\n%s", list)
	}
	out1, errOut, err := runCmd(t, "-preset", "churn", "-horizon", "3000",
		"-reps", "2", "-nodes", "16", "-churn-rate", "3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out1, "t_start,t_end,") {
		t.Fatalf("churn preset emitted no CSV:\n%s", out1)
	}
	if !strings.Contains(errOut, "churn-16") {
		t.Errorf("summary line missing generated scenario name:\n%s", errOut)
	}
	out2, _, err := runCmd(t, "-preset", "churn", "-horizon", "3000",
		"-reps", "2", "-nodes", "16", "-churn-rate", "3")
	if err != nil {
		t.Fatal(err)
	}
	if out1 != out2 {
		t.Error("churn preset is not deterministic for one seed")
	}
	out3, _, err := runCmd(t, "-preset", "churn", "-horizon", "3000",
		"-reps", "2", "-nodes", "16", "-churn-rate", "3", "-seed", "9")
	if err != nil {
		t.Fatal(err)
	}
	if out1 == out3 {
		t.Error("churn preset ignored the seed")
	}
}
