// Command sdasim regenerates the paper's tables and figures.
//
// Usage:
//
//	sdasim -list
//	sdasim -exp fig2b                       # laptop-scale defaults
//	sdasim -exp fig2b -format chart
//	sdasim -exp all -horizon 1e6 -reps 2    # paper scale
//	sdasim -exp fig4 -format csv -out results/
//	sdasim -exp all -parallel 8 -progress   # bound the worker pool
//	sdasim -exp abl-hot -nodes 1024         # scale the topology
//	sdasim -exp fig2b -queue ladder         # pin an event queue
//	sdasim -exp fig2b -backend proc -workers 3   # fan out across processes
//
// Every experiment runs through one repro.Session, so consecutive
// experiments share warm per-worker workspaces. Sweeps fan their
// (curve, data-point) cells out across cores; -parallel bounds the
// worker pool (0 = GOMAXPROCS, 1 = sequential). Results are
// bit-identical regardless of parallelism: each replication derives its
// own RNG substreams from its seed.
//
// -nodes overrides the node count k for every replication (experiments
// that pin node-dependent parameters reject incompatible overrides with
// a descriptive error); -queue selects the engine's event queue (auto,
// heap, ladder) — results are byte-identical across queues, only speed
// differs with topology size.
//
// Experiment ids follow DESIGN.md: table1, fig2a, fig2b, fig3, fig4,
// combined, abl-pexerr, abl-abort, abl-mlf, abl-m, abl-hetm, abl-hot,
// ext-as, ext-adiv.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro"
	"repro/cmd/internal/cliflags"
	"repro/internal/experiment"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sdasim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (retErr error) {
	fs := flag.NewFlagSet("sdasim", flag.ContinueOnError)
	var (
		list    = fs.Bool("list", false, "list experiments and exit")
		expID   = fs.String("exp", "", "experiment id, or 'all'")
		horizon = fs.Float64("horizon", 0, "simulated time units per replication (default 50000; paper: 1e6)")
		reps    = fs.Int("reps", 0, "replications per data point (default 2)")
		seed    = fs.Uint64("seed", 0, "base random seed (default 1)")
		target  = fs.Float64("targetci", 0, "add replications (up to -maxreps) until every 95% half-width is at or below this many percentage points (paper protocol: 0.35); 0 disables")
		maxReps = fs.Int("maxreps", 0, "replication cap for -targetci (default 10)")
		common  = cliflags.Register(fs)

		format = fs.String("format", "table", "output format: table, chart, csv, json, or all")
		outDir = fs.String("out", "", "write per-experiment files to this directory instead of stdout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Chaos arms before any backend work — including worker mode, so a
	// directly-started worker and one inheriting the coordinator's
	// environment behave the same.
	if err := common.ArmFailpoints(); err != nil {
		return err
	}
	if common.ShardServer {
		// Worker mode: serve sub-shards over stdin/stdout for a
		// -backend proc coordinator, then exit.
		return cliflags.ServeShardWorker()
	}
	if common.ServeWorkers != "" {
		// Network-worker mode: serve shard workers over TCP for remote
		// -connect coordinators until interrupted.
		return cliflags.ServeTCPWorkers(common.ServeWorkers, os.Stderr)
	}
	stopProf, err := common.StartProfiling()
	if err != nil {
		return err
	}
	// The exit heap profile is written inside stop; a write failure must
	// reach the exit status, not just stderr.
	defer func() {
		if perr := stopProf(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()

	if *list {
		for _, e := range experiment.All() {
			fmt.Fprintf(out, "%-12s %s\n", e.ID, e.Title)
		}
		return nil
	}
	if *expID == "" {
		fs.Usage()
		return fmt.Errorf("missing -exp (or -list)")
	}
	switch *format {
	case "table", "chart", "csv", "json", "all":
	default:
		return fmt.Errorf("unknown -format %q", *format)
	}

	var exps []experiment.Experiment
	if *expID == "all" {
		exps = experiment.All()
	} else {
		for _, id := range strings.Split(*expID, ",") {
			e, err := experiment.ByID(strings.TrimSpace(id))
			if err != nil {
				// Show the full catalogue (ids and titles), not just a
				// bare failure: the valid names are the fix.
				var sb strings.Builder
				fmt.Fprintf(&sb, "%v\nvalid experiments (sdasim -list):\n", err)
				for _, e := range experiment.All() {
					fmt.Fprintf(&sb, "  %-12s %s\n", e.ID, e.Title)
				}
				return fmt.Errorf("%s", strings.TrimRight(sb.String(), "\n"))
			}
			exps = append(exps, e)
		}
	}

	queueKind, err := common.QueueKind()
	if err != nil {
		return err
	}
	if err := common.ValidateNodes(); err != nil {
		return err
	}

	// One session serves every experiment of the invocation: warm
	// workspaces carry over between sweeps (for -backend proc or
	// -connect, each worker keeps its own warm pool the same way, and
	// -cache-mb serves repeated cells from memory).
	backend, closeBackend, err := common.ResolveBackend()
	if err != nil {
		return err
	}
	defer closeBackend()
	var sess *repro.Session
	if backend != nil {
		sess = repro.NewSessionWithBackend(backend)
	} else {
		sess = repro.NewSession()
	}
	defer sess.Close()

	// -metrics-addr scrapes the session live; counters advance as
	// replications finish, gauges (in-flight, pool) reflect the moment.
	stopMetrics, err := common.StartMetrics(sess.Snapshot)
	if err != nil {
		return err
	}
	defer stopMetrics()

	opts := experiment.Options{
		Horizon:     *horizon,
		Reps:        *reps,
		Seed:        *seed,
		TargetCI:    *target,
		MaxReps:     *maxReps,
		Parallelism: common.Parallel,
		Nodes:       common.Nodes,
		EventQueue:  queueKind,
	}
	for _, e := range exps {
		// One meter per experiment: sweep cells completed, rate, ETA.
		opts.Progress = common.ProgressMeter(e.ID)
		started := time.Now()
		res, err := sess.Experiment(context.Background(), e.ID, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		body, err := render(res, *format)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		header := fmt.Sprintf("== %s: %s (%.1fs)\n-- paper: %s\n", e.ID, e.Title,
			time.Since(started).Seconds(), e.Paper)
		if *outDir == "" {
			fmt.Fprint(out, header, body, "\n")
			continue
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(*outDir, e.ID+".txt")
		if err := os.WriteFile(path, []byte(header+body), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", path)
	}
	return nil
}

func render(res *experiment.Result, format string) (string, error) {
	var b strings.Builder
	if res.Notes != "" {
		b.WriteString(res.Notes)
	}
	hasData := res.Figure != nil && len(res.Figure.Curves) > 0
	if !hasData {
		return b.String(), nil
	}
	if format == "table" || format == "all" {
		b.WriteString(experiment.RenderTable(res.Figure))
	}
	if format == "chart" || format == "all" {
		b.WriteString(experiment.RenderChart(res.Figure, 64, 18))
	}
	if format == "csv" || format == "all" {
		b.WriteString(experiment.RenderCSV(res.Figure))
	}
	if format == "json" || format == "all" {
		s, err := experiment.RenderJSON(res.Figure)
		if err != nil {
			return "", err
		}
		b.WriteString(s)
	}
	return b.String(), nil
}
