package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-list"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"table1", "fig2a", "fig2b", "fig3", "fig4", "combined"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-exp", "abl-m", "-horizon", "1500", "-reps", "1", "-format", "all"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"== abl-m", "paper:", "UD", "EQF", "csv" /* never */} {
		if want == "csv" {
			continue
		}
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// "all" format includes the CSV header line.
	if !strings.Contains(out, "UD,UD ci95") {
		t.Error("format=all missing CSV section")
	}
}

// TestRunParallelFlagIsDeterministic compares full CSV output across
// -parallel settings; only the timing header may differ.
func TestRunParallelFlagIsDeterministic(t *testing.T) {
	render := func(parallel string) string {
		t.Helper()
		var b strings.Builder
		err := run([]string{"-exp", "fig2b", "-horizon", "900", "-reps", "2",
			"-format", "csv", "-parallel", parallel}, &b)
		if err != nil {
			t.Fatal(err)
		}
		// Drop the "== id: title (elapsed)" header; elapsed time is the
		// one legitimately nondeterministic byte range.
		lines := strings.Split(b.String(), "\n")
		kept := lines[:0]
		for _, l := range lines {
			if !strings.HasPrefix(l, "== ") {
				kept = append(kept, l)
			}
		}
		return strings.Join(kept, "\n")
	}
	seq := render("1")
	if !strings.Contains(seq, "UD,UD ci95") {
		t.Fatalf("csv output missing data:\n%s", seq)
	}
	for _, p := range []string{"0", "8"} {
		if got := render(p); got != seq {
			t.Errorf("-parallel %s output diverges from -parallel 1:\n%s\nvs:\n%s", p, got, seq)
		}
	}
}

func TestRunMultipleIDs(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-exp", "table1,abl-m", "-horizon", "1200", "-reps", "1"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "== table1") || !strings.Contains(out, "== abl-m") {
		t.Errorf("multi-experiment output incomplete:\n%s", out)
	}
}

func TestRunWritesFiles(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	err := run([]string{"-exp", "table1", "-out", dir}, &b)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Earliest Deadline First") {
		t.Error("written file incomplete")
	}
}

// TestUnknownExperimentListsValidOnes pins the error UX: a typo'd -exp
// points at -list and enumerates the catalogue instead of failing bare.
func TestUnknownExperimentListsValidOnes(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-exp", "fig9z"}, &b)
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "fig9z") {
		t.Errorf("error does not echo the bad id: %q", msg)
	}
	if !strings.Contains(msg, "-list") {
		t.Errorf("error does not point at -list: %q", msg)
	}
	for _, id := range []string{"table1", "fig2a", "fig2b", "fig3", "fig4", "combined"} {
		if !strings.Contains(msg, id) {
			t.Errorf("error listing missing %q: %q", id, msg)
		}
	}
}

// TestNodesOverride runs a sweep whose node-dependent parameters derive
// from Config.Nodes (abl-hot builds its per-node rate multipliers from
// it), so -nodes must scale the whole experiment without code edits.
func TestNodesOverride(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-exp", "abl-hot", "-nodes", "8", "-horizon", "400",
		"-reps", "1", "-format", "csv"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "== abl-hot") {
		t.Errorf("output missing experiment header:\n%s", b.String())
	}
	// The override must change results: the same tiny sweep at the
	// default 6 nodes yields a different CSV body.
	var def strings.Builder
	if err := run([]string{"-exp", "abl-hot", "-horizon", "400",
		"-reps", "1", "-format", "csv"}, &def); err != nil {
		t.Fatal(err)
	}
	strip := func(s string) string {
		lines := strings.Split(s, "\n")
		kept := lines[:0]
		for _, l := range lines {
			if !strings.HasPrefix(l, "== ") {
				kept = append(kept, l)
			}
		}
		return strings.Join(kept, "\n")
	}
	if strip(b.String()) == strip(def.String()) {
		t.Error("-nodes 8 produced byte-identical output to the 6-node default")
	}
}

// TestQueueFlagIsByteIdentical pins the event-queue contract at the CLI:
// -queue heap and -queue ladder must render identical artifacts.
func TestQueueFlagIsByteIdentical(t *testing.T) {
	render := func(queue string) string {
		t.Helper()
		var b strings.Builder
		err := run([]string{"-exp", "fig2b", "-horizon", "900", "-reps", "1",
			"-format", "csv", "-queue", queue}, &b)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(b.String(), "\n")
		kept := lines[:0]
		for _, l := range lines {
			if !strings.HasPrefix(l, "== ") {
				kept = append(kept, l)
			}
		}
		return strings.Join(kept, "\n")
	}
	heap, ladder := render("heap"), render("ladder")
	if heap != ladder {
		t.Fatalf("-queue heap and -queue ladder rendered different CSV:\nheap:\n%s\nladder:\n%s", heap, ladder)
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "no exp", args: []string{}},
		{name: "unknown exp", args: []string{"-exp", "nope"}},
		{name: "bad format", args: []string{"-exp", "table1", "-format", "xml"}},
		{name: "bad queue", args: []string{"-exp", "table1", "-queue", "btree"}},
		{name: "negative nodes", args: []string{"-exp", "table1", "-nodes", "-3"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var b strings.Builder
			if err := run(tt.args, &b); err == nil {
				t.Error("run succeeded, want error")
			}
		})
	}
}
