package repro

// One benchmark per paper artifact (Table 1 and every figure, plus the
// section-6 experiment, the section-4.3 ablations and the extensions).
// Each iteration regenerates the artifact at a reduced horizon — the
// benchmark measures the cost of reproducing the figure, and reports the
// headline miss ratios of the final iteration as custom metrics so the
// shape stays visible in benchmark output.
//
// Paper-scale regeneration is `sdasim -exp <id> -horizon 1e6 -reps 2`.

import (
	"fmt"
	"strings"
	"testing"
)

// BenchmarkRunReplications measures the replicated-run fan-out at
// several worker counts. Replication results are bit-identical across
// the sub-benchmarks (see internal/system's determinism tests); only the
// wall clock should move. On a machine with >= 4 cores the parallel=4
// case is expected to run >= 2x faster than parallel=1.
func BenchmarkRunReplications(b *testing.B) {
	cfg := BaselineConfig()
	cfg.Horizon = 2000
	const reps = 8
	for _, parallel := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallel=%d", parallel), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := SimulateReplicationsParallel(cfg, reps, parallel); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScenarioRun measures the scenario engine (burst preset:
// non-homogeneous arrivals via thinning, windowed series, merged across
// replications) at several worker counts. The merged CSV is
// byte-identical across the sub-benchmarks; only wall clock moves.
func BenchmarkScenarioRun(b *testing.B) {
	cfg := BaselineConfig()
	cfg.Horizon = 2000
	sc, err := ScenarioPreset("burst", cfg.Horizon)
	if err != nil {
		b.Fatal(err)
	}
	const reps = 8
	for _, parallel := range []int{1, 4} {
		b.Run(fmt.Sprintf("parallel=%d", parallel), func(b *testing.B) {
			b.ReportAllocs()
			var last *ScenarioResult
			for i := 0; i < b.N; i++ {
				res, err := RunScenario(cfg, sc, reps, parallel)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			if last != nil {
				b.ReportMetric(float64(last.Series.Len()), "windows/op")
				b.ReportMetric(last.GlobalMD.Mean, "MDglobal%")
			}
		})
	}
}

// benchOptions keeps one iteration around tens of milliseconds.
func benchOptions() ExperimentOptions {
	return ExperimentOptions{Horizon: 1200, Reps: 1, Seed: 42}
}

// benchArtifact regenerates one experiment per iteration and reports the
// named curves' final y values as metrics.
func benchArtifact(b *testing.B, id string, reportCurves ...string) {
	b.Helper()
	opts := benchOptions()
	var last *ExperimentResult
	for i := 0; i < b.N; i++ {
		res, err := RunExperiment(id, opts)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last == nil || last.Figure == nil {
		return
	}
	for _, label := range reportCurves {
		c := last.Figure.Curve(label)
		if c == nil || len(c.Points) == 0 {
			continue
		}
		unit := strings.ReplaceAll(label, " ", "_") + "_MD%"
		b.ReportMetric(c.Points[len(c.Points)-1].Y, unit)
	}
}

func BenchmarkTable1BaselineRun(b *testing.B) {
	cfg := BaselineConfig()
	cfg.Horizon = 2000
	var last *SimMetrics
	for i := 0; i < b.N; i++ {
		m, err := Simulate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = m
	}
	if last != nil {
		b.ReportMetric(float64(last.LocalGenerated+last.GlobalGenerated), "tasks/op")
		b.ReportMetric(last.MDGlobal(), "MDglobal%")
	}
}

func BenchmarkFig2aSSPLocal(b *testing.B)  { benchArtifact(b, "fig2a", "UD", "EQF") }
func BenchmarkFig2bSSPGlobal(b *testing.B) { benchArtifact(b, "fig2b", "UD", "EQF") }

func BenchmarkFig3FracLocal(b *testing.B) {
	benchArtifact(b, "fig3", "UD global", "EQF global")
}

func BenchmarkFig4PSP(b *testing.B) {
	benchArtifact(b, "fig4", "UD global", "DIV-1 global")
}

func BenchmarkCombinedSSPPSP(b *testing.B) {
	benchArtifact(b, "combined", "UD-UD global", "EQF-DIV-1 global")
}

func BenchmarkAblationPexError(b *testing.B) { benchArtifact(b, "abl-pexerr", "EQF") }

func BenchmarkAblationAbort(b *testing.B) {
	benchArtifact(b, "abl-abort", "DIV-1 abort", "GF abort")
}

func BenchmarkAblationMLF(b *testing.B) { benchArtifact(b, "abl-mlf", "EQF MLF") }

func BenchmarkAblationRelFlex(b *testing.B) { benchArtifact(b, "abl-relflex", "UD", "EQF") }

func BenchmarkAblationSubtasks(b *testing.B) { benchArtifact(b, "abl-m", "UD", "EQF") }

func BenchmarkAblationHeteroM(b *testing.B) {
	benchArtifact(b, "abl-hetm", "EQF hetero")
}

func BenchmarkAblationHotNode(b *testing.B) {
	benchArtifact(b, "abl-hot", "EQF global")
}

func BenchmarkExtensionArtificialStages(b *testing.B) {
	benchArtifact(b, "ext-as", "EQF-AS global")
}

func BenchmarkExtensionAdaptiveDiv(b *testing.B) {
	benchArtifact(b, "ext-adiv", "ADIV4")
}

func BenchmarkExtensionPreemptive(b *testing.B) {
	benchArtifact(b, "ext-preempt", "EQF preemptive")
}

func BenchmarkDiagnosticStages(b *testing.B) {
	benchArtifact(b, "diag-stages", "UD", "EQF")
}

// Micro-benchmarks of the core operations a downstream scheduler would
// call on its hot path.

func BenchmarkStrategyStageDeadline(b *testing.B) {
	remaining := []float64{1.2, 0.8, 2.5, 1.1}
	strategies := []struct {
		name string
		s    SerialStrategy
	}{
		{name: "UD", s: UD},
		{name: "ED", s: ED},
		{name: "EQS", s: EQS},
		{name: "EQF", s: EQF},
	}
	for _, tt := range strategies {
		b.Run(tt.name, func(b *testing.B) {
			var sink float64
			for i := 0; i < b.N; i++ {
				sink = tt.s.StageDeadline(10, 30, remaining)
			}
			_ = sink
		})
	}
}

func BenchmarkAssignerPlan(b *testing.B) {
	g := MustParseGraph("[a:1 [b:2 || c:3 || d:1] e:2 [f:1 || g:1] h:0.5]")
	a := NewAssigner(EQF, DIV(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Plan(g, 0, 20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGraphParse(b *testing.B) {
	const notation = "[gather:1 [f1:1 || f2:1.5 || f3:2] analyze:2 trade:1]"
	for i := 0; i < b.N; i++ {
		if _, err := ParseGraph(notation); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScalingThroughput measures full-system simulator speed
// across topology sizes and event-queue implementations. The per-node
// load is the Table 1 baseline at every size, so the pending-event
// count (and with it the event queue's share of the runtime) grows with
// the node count; the horizon shrinks proportionally so one op is
// roughly constant simulated work. Results are byte-identical across
// the queue=... sub-benchmarks — only tasks/s may differ.
//
// The recorded numbers (BENCH_pr4.json) show the ladder ahead of the
// binary-heap path from nodes=64 up; CI's bench-regression job pins
// each sub-benchmark against its own committed baseline within
// tolerance (benchcheck compares absolute numbers per benchmark, not
// ladder-vs-heap ratios). The full-system ratio is Amdahl-bounded —
// model work (RNG draws, ready queues, stage bookkeeping) dominates as
// the per-node working set outgrows the cache — so the event core's
// isolated scaling advantage is measured separately by
// BenchmarkEventCoreScaling in internal/sim, which strips the model
// away (its recorded ladder-vs-heap ratio reaches 2x at 1M pending
// events).
func BenchmarkScalingThroughput(b *testing.B) {
	for _, k := range []int{6, 64, 1024, 16384, 65536} {
		for _, q := range []EventQueueKind{EventQueueHeap, EventQueueLadder} {
			b.Run(fmt.Sprintf("nodes=%d/queue=%s", k, q), func(b *testing.B) {
				b.ReportAllocs()
				cfg := BaselineConfig()
				cfg.Nodes = k
				cfg.EventQueue = q
				cfg.Horizon = float64(b.N) * 10 * 6 / float64(k)
				if cfg.Horizon < 10 {
					cfg.Horizon = 10
				}
				cfg.Warmup = cfg.Horizon / 100
				// Steady-state measurement: fault in the topology's
				// arenas (slots, lanes, stream tables — ~100 MB at 64k
				// nodes) before the clock starts, so the number reports
				// simulation throughput rather than first-touch page
				// zeroing. The measured runs below still pay full
				// per-replication setup.
				warm := cfg
				warm.Horizon, warm.Warmup = 10, 0
				if _, err := Simulate(warm); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				m, err := Simulate(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(m.LocalDone+m.GlobalDone)/b.Elapsed().Seconds(), "tasks/s")
			})
		}
	}
}

func BenchmarkSimulationThroughput(b *testing.B) {
	// Measures raw simulator speed in executed tasks per second at the
	// baseline load; the horizon scales with b.N. allocs/op here is the
	// steady-state allocation count per 10 simulated time units — the
	// pooled engine holds it at zero.
	b.ReportAllocs()
	cfg := BaselineConfig()
	cfg.Horizon = float64(b.N) * 10
	cfg.Warmup = 1
	b.ResetTimer()
	m, err := Simulate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(m.LocalDone+m.GlobalDone)/b.Elapsed().Seconds(), "tasks/s")
}
