package repro

import (
	"math"
	"strings"
	"testing"
	"time"
)

// TestQuickstartPlan exercises the doc-comment example end to end.
func TestQuickstartPlan(t *testing.T) {
	g := MustParseGraph("[gather:1 [f1:1 || f2:1.5] decide:2]")
	a := NewAssigner(EQF, DIV(1))
	plan, err := a.Plan(g, 0, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 4 {
		t.Fatalf("plan has %d leaves, want 4", len(plan))
	}
	for _, p := range plan {
		if p.Deadline > 12+1e-9 {
			t.Errorf("leaf %s deadline %v beyond end-to-end deadline", p.Leaf.Name, p.Deadline)
		}
	}
	// The final stage inherits the full deadline.
	if last := plan[len(plan)-1]; math.Abs(last.Deadline-12) > 1e-9 {
		t.Errorf("final stage deadline = %v, want 12", last.Deadline)
	}
}

func TestStrategyLookups(t *testing.T) {
	for _, name := range []string{"UD", "ED", "EQS", "EQF", "EQF-AS2"} {
		if _, err := SerialStrategyByName(name); err != nil {
			t.Errorf("SerialStrategyByName(%q): %v", name, err)
		}
	}
	for _, name := range []string{"UD", "DIV-1", "DIV-2", "GF", "ADIV4"} {
		if _, err := ParallelStrategyByName(name); err != nil {
			t.Errorf("ParallelStrategyByName(%q): %v", name, err)
		}
	}
	if got := NewAssigner(EQF, DIV(1)).Name(); got != "EQF-DIV-1" {
		t.Errorf("assigner name = %q", got)
	}
	if got := ArtificialStages(EQF, 2).Name(); got != "EQF-AS" {
		t.Errorf("artificial stages name = %q", got)
	}
	if got := AdaptiveDIV(2).Name(); got != "ADIV" {
		t.Errorf("adaptive div name = %q", got)
	}
}

func TestSimulateBaseline(t *testing.T) {
	cfg := BaselineConfig()
	cfg.Horizon = 5000
	m, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.LocalGenerated == 0 || m.GlobalGenerated == 0 {
		t.Fatal("baseline simulation generated nothing")
	}
	if m.MDGlobal() <= 0 || m.MDGlobal() >= 100 {
		t.Errorf("MDglobal = %v%%, implausible", m.MDGlobal())
	}
}

func TestSimulateReplications(t *testing.T) {
	cfg := PSPBaselineConfig()
	cfg.Horizon = 3000
	rep, err := SimulateReplications(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 2 {
		t.Fatalf("runs = %d, want 2", len(rep.Runs))
	}
}

func TestExperimentRegistry(t *testing.T) {
	if len(Experiments()) < 14 {
		t.Errorf("only %d experiments registered", len(Experiments()))
	}
	res, err := RunExperiment("table1", ExperimentOptions{Horizon: 1000, Reps: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Notes, "Earliest Deadline First") {
		t.Error("table1 notes incomplete")
	}
	if _, err := RunExperiment("bogus", ExperimentOptions{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRenderHelpers(t *testing.T) {
	res, err := RunExperiment("abl-m", ExperimentOptions{Horizon: 1500, Reps: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if out := RenderTable(res.Figure); !strings.Contains(out, "EQF") {
		t.Error("table render missing curve")
	}
	if out := RenderChart(res.Figure, 40, 10); !strings.Contains(out, "EQF") {
		t.Error("chart render missing legend")
	}
	if out := RenderCSV(res.Figure); !strings.HasPrefix(out, "m (subtasks per global task)") {
		t.Errorf("csv header unexpected: %q", strings.SplitN(out, "\n", 2)[0])
	}
}

func TestLiveFacade(t *testing.T) {
	nodes := []*LiveNode{NewLiveNode("db"), NewLiveNode("cpu")}
	defer func() {
		for _, n := range nodes {
			n.Shutdown()
		}
	}()
	rt, err := NewLiveRuntime(nodes, NewAssigner(EQF, DIV(1)))
	if err != nil {
		t.Fatal(err)
	}
	rt.TimeScale = time.Millisecond
	g := MustParseGraph("[fetch:2 [scan:3 || rank:4] emit:1]")
	leaves := g.Flatten()
	for i, leaf := range leaves {
		leaf.NodeID = i % 2
	}
	rep, err := rt.Execute(g, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Missed {
		t.Error("relaxed live deadline missed")
	}
	if len(rep.Subtasks) != 4 {
		t.Errorf("subtask reports = %d, want 4", len(rep.Subtasks))
	}
}

func TestTraceFacade(t *testing.T) {
	cfg := BaselineConfig()
	cfg.Horizon = 500
	rec := NewTraceRecorder(100)
	cfg.Trace = rec
	if _, err := Simulate(cfg); err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 100 {
		t.Errorf("recorder retained %d events, want full capacity 100", rec.Len())
	}
	if rec.Dropped() == 0 {
		t.Error("500-unit run should overflow a 100-event recorder")
	}
	var b strings.Builder
	if err := rec.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "t,kind,task") {
		t.Error("csv header missing")
	}
}

func TestScenarioFacade(t *testing.T) {
	if len(ScenarioPresets()) < 4 {
		t.Errorf("presets = %v, want the built-in library", ScenarioPresets())
	}
	sc, err := ParseScenario([]byte(`{
		"name": "facade",
		"interval": 500,
		"phases": [
			{"duration": 1500, "rate": 1},
			{"duration": 500, "rate": 3},
			{"duration": 0, "rate": 1}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg := BaselineConfig()
	cfg.Horizon = 3000
	res, err := RunScenario(cfg, sc, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Series.Len(); got != 6 {
		t.Errorf("series windows = %d, want 6", got)
	}
	var b strings.Builder
	if err := res.Series.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "t_start,t_end,") {
		t.Error("series CSV header missing")
	}
	// Programmatic specs work through the facade aliases too.
	if _, err := NewScenario(ScenarioSpec{
		Phases: []ScenarioPhase{{Duration: 10, Rate: 2}},
		Events: []ScenarioEvent{{Kind: "outage", Node: 0, At: 1, Duration: 2}},
	}); err != nil {
		t.Fatal(err)
	}
}

func TestGraphBuildersRoundTrip(t *testing.T) {
	g := Serial(Simple("a", 1), Parallel(Simple("b", 2), Simple("c", 3)))
	parsed, err := ParseGraph(g.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.String() != g.String() {
		t.Errorf("round trip changed graph: %q vs %q", parsed.String(), g.String())
	}
}
