package repro

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
)

// TestRecordWorkingSet65536 is the recorded working-set profile behind
// BENCH_pr9.json's "profile" section — the fallback proof of the
// extreme-scale memory-layout work on machines without perf(1): it runs
// the same 65536-node ladder configuration as the scaling benchmark and
// reports runtime.MemStats deltas as JSON. Heap in-use after the run
// bounds the resident working set the hot loop walks; allocation and GC
// deltas across the measured replication show the steady state is
// arena-resident (no per-task heap traffic).
//
// The run is opt-in (RECORD_WORKINGSET=1) because it simulates ~750k
// tasks; reproduce the committed numbers with
//
//	RECORD_WORKINGSET=1 go test -run TestRecordWorkingSet65536 -v .
//
// optionally under GODEBUG=gctrace=1 for the collector's own log.
func TestRecordWorkingSet65536(t *testing.T) {
	if os.Getenv("RECORD_WORKINGSET") == "" {
		t.Skip("set RECORD_WORKINGSET=1 to record the 65536-node working-set profile")
	}
	cfg := BaselineConfig()
	cfg.Nodes = 65536
	cfg.EventQueue = EventQueueLadder
	cfg.Horizon = 30
	cfg.Warmup = 0.3

	// Warm run: populate every arena (slots, lanes, streams, pools) so
	// the measured run is the steady state a long simulation lives in.
	if _, err := Simulate(cfg); err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	m, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	profile := map[string]any{
		"nodes":                  cfg.Nodes,
		"queue":                  "ladder",
		"horizon":                cfg.Horizon,
		"tasks_done":             m.LocalDone + m.GlobalDone,
		"heap_inuse_bytes":       after.HeapInuse,
		"heap_alloc_bytes":       after.HeapAlloc,
		"alloc_delta_bytes":      after.TotalAlloc - before.TotalAlloc,
		"mallocs_delta":          after.Mallocs - before.Mallocs,
		"gc_cycles_delta":        after.NumGC - before.NumGC,
		"gc_pause_delta_seconds": float64(after.PauseTotalNs-before.PauseTotalNs) / 1e9,
	}
	out, err := json.MarshalIndent(profile, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("working-set profile:\n%s", out)
}
