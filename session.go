package repro

import (
	"context"
	"io"
	"sync"

	"repro/internal/distrib"
	"repro/internal/experiment"
	"repro/internal/netdist"
	"repro/internal/obs"
	"repro/internal/session"
)

// Session API ------------------------------------------------------------
//
// The Session/Job API is the unified run layer: one stateful entry point
// whose warm per-worker workspaces (engine, pools, queues, node group,
// reconfigurable workload sources) persist across calls, with functional
// options instead of positional arguments, context-aware cancellation
// with deterministic seed-prefix partial results, a streaming surface,
// and a pluggable Backend — the seam a distributed runner implements.
// The pre-session free functions (Simulate, SimulateReplications,
// RunScenario, ...) remain as deprecated wrappers over a package-level
// default session with byte-identical outputs.

// Job describes one run request: a configuration, an optional scenario,
// and a replication count (0 means one). Replication i uses seed
// Config.Seed + i.
type Job = session.Job

// RunOption configures a Session (as a call default) or one run.
type RunOption = session.Option

// RunResult is a completed or cancelled job: per-replication metrics in
// seed order, the seeds that finished, class miss-percentage estimates,
// and the merged scenario series (when the job had one).
type RunResult = session.Result

// StreamItem is one streamed replication result (index, seed, metrics —
// including the replication's own scenario series chunk).
type StreamItem = session.Item

// RunStream is an in-flight streaming run: Items yields per-replication
// results in seed order as workers finish; Result blocks for the final
// aggregate.
type RunStream = session.Stream

// Shard is the unit of work a Backend executes: one configuration plus
// a seed range, one replication per seed.
type Shard = session.Shard

// ShardResult is a Backend's seed-ordered answer; on cancellation it
// covers the finished seed prefix.
type ShardResult = session.ShardResult

// Backend executes shards — the seam a distributed runner plugs into.
// The in-process worker pool is the built-in implementation.
type Backend = session.Backend

// WithParallelism bounds a run's worker pool: 0 uses all cores, 1
// forces the sequential path. Results are bit-identical at any setting.
func WithParallelism(n int) RunOption { return session.WithParallelism(n) }

// WithProgress observes per-replication completion (fn may be called
// concurrently from worker goroutines).
func WithProgress(fn func(done, total int)) RunOption { return session.WithProgress(fn) }

// WithTrace attaches a lifecycle recorder to every replication; tracing
// forces the sequential path.
func WithTrace(rec *TraceRecorder) RunOption { return session.WithTrace(rec) }

// WithEventQueue pins the engine's pending-event structure; results are
// byte-identical across kinds.
func WithEventQueue(kind EventQueueKind) RunOption { return session.WithEventQueue(kind) }

// WithPoolingDisabled runs on the pure allocation path (the reference
// path the pooled one is tested against); results are bit-identical.
func WithPoolingDisabled() RunOption { return session.WithPoolingDisabled() }

// MetricsSnapshot is a point-in-time view of a session's runtime
// metrics, returned by Session.Snapshot: engine counters accumulated
// over every finished replication (deterministic — identical for a
// given workload at any parallelism, queue kind, or backend),
// job/in-flight/pool gauges, and per-worker coordinator stats on the
// multi-process backend. WritePrometheus renders it in Prometheus text
// exposition format; the CLIs' -metrics-addr flag serves it live.
type MetricsSnapshot = obs.Snapshot

// Session owns the execution resources of the run API: a worker pool
// whose per-worker warm workspaces persist across every call (or a
// caller-provided Backend). Create one with NewSession, share it freely
// (it is safe for concurrent use), and Close it to release the warm
// state. All run methods take a context; cancelling it stops new
// replications while finished ones keep their seed-ordered results.
type Session struct {
	*session.Session
}

// NewSession returns a session on the in-process backend; opts become
// the session-wide defaults (overridable per call).
func NewSession(opts ...RunOption) *Session {
	return &Session{session.New(opts...)}
}

// NewSessionWithBackend returns a session that executes every job
// through b — the distributed-runner seam. Everything above the Backend
// (streaming, experiments, the CLIs) works unchanged.
func NewSessionWithBackend(b Backend, opts ...RunOption) *Session {
	return &Session{session.NewWithBackend(b, opts...)}
}

// Distributed execution --------------------------------------------------

// ProcBackend is the multi-process Backend: a coordinator that spawns N
// shard-worker processes, splits each shard's seed range into
// sub-shards, work-steals them across the workers, and merges results
// in seed order, so its output is byte-identical to the in-process pool
// at any worker count. The coordinator supervises its fleet: heartbeat
// liveness probes reap hung workers like dead ones, failed sub-shards
// retry with backoff on survivors (or mid-run respawns, within a
// budget), idle workers speculatively re-run stragglers' chunks (first
// result wins, deduplicated), and when the fleet cannot be kept alive
// the remaining seeds degrade gracefully to an in-process pool — every
// recovery path preserves bit-identical results. Configurations that
// cannot cross a process boundary (an attached trace recorder)
// transparently fall back to in-process execution. Close it to shut the
// workers down.
type ProcBackend = distrib.ProcBackend

// ProcBackendOptions configures NewProcBackend: worker-process count,
// the worker argv (empty re-executes the current binary with
// -shard-server — the mode both CLIs serve), sub-shard granularity,
// worker stderr routing, and the supervision knobs (heartbeat interval,
// liveness deadline, hedge threshold, respawn budget, retry backoff).
type ProcBackendOptions = distrib.ProcOptions

// NewProcBackend returns a multi-process backend; worker processes
// spawn lazily on the first run that needs them. Use it with
// NewSessionWithBackend:
//
//	backend := repro.NewProcBackend(repro.ProcBackendOptions{Workers: 3})
//	defer backend.Close()
//	sess := repro.NewSessionWithBackend(backend)
//	defer sess.Close()
func NewProcBackend(opts ProcBackendOptions) *ProcBackend {
	return distrib.NewProcBackend(opts)
}

// ServeShardWorker runs the worker half of the shard protocol on r and
// w until the coordinator closes the connection — the body of a
// -shard-server process. Programs embedding this package as a worker
// call ServeShardWorker(os.Stdin, os.Stdout) when spawned by a
// ProcBackend.
func ServeShardWorker(r io.Reader, w io.Writer) error {
	return distrib.ServeWorker(r, w)
}

// Remote execution & service mode ----------------------------------------

// WorkerServer serves shard workers over TCP: every accepted connection
// must open with the protocol handshake (magic + version, so mismatched
// binaries fail with a structured error instead of a gob panic) and
// then speaks the same frame protocol a -shard-server process does,
// with its own warm worker pool per connection. The CLIs expose it as
// -serve-workers.
type WorkerServer = netdist.Server

// ListenWorkers binds a WorkerServer (":0" picks a free port); call
// Serve to accept coordinators and Close to shut down.
func ListenWorkers(addr string) (*WorkerServer, error) {
	return netdist.Listen(addr)
}

// NetBackend is the remote Backend: the ProcBackend coordinator —
// heartbeats, retry, hedging, respawn budget and all — running over TCP
// connections to a static list of WorkerServer addresses. A lost
// connection is re-dialed like a dead process; with every address
// unreachable, shards degrade to the embedded in-process pool. Output
// is byte-identical to every other backend. The CLIs expose it as
// -connect.
type NetBackend = netdist.NetBackend

// NetBackendOptions configures NewNetBackend: the worker address list,
// the dial timeout, and the ProcBackend supervision knobs.
type NetBackendOptions = netdist.BackendOptions

// NewNetBackend returns a Backend over remote TCP workers; connections
// are dialed lazily on the first run.
func NewNetBackend(opts NetBackendOptions) (*NetBackend, error) {
	return netdist.NewBackend(opts)
}

// ResultCache is the deterministic shard-result cache: a Backend
// middleware keyed by (configuration fingerprint, seed) whose hits are
// byte-identical to fresh simulation — caching can never change
// results, only skip work. The CLIs expose it as -cache-mb.
type ResultCache = netdist.Cache

// NewResultCache wraps inner with a result cache bounded at maxBytes of
// encoded results (<= 0 picks 256 MiB).
func NewResultCache(inner Backend, maxBytes int64) *ResultCache {
	return netdist.NewCache(inner, maxBytes)
}

// QueryService is the long-running simulation service behind the
// sdaserve CLI: JSON job specs over HTTP, warm sessions keyed by
// configuration fingerprint, a shared ResultCache, and seed-ordered
// NDJSON streaming to many concurrent clients.
type QueryService = netdist.Service

// QueryServiceOptions configures NewQueryService.
type QueryServiceOptions = netdist.ServiceOptions

// NewQueryService builds a service over the given transport; serve its
// Handler with net/http and Close it on shutdown.
func NewQueryService(opts QueryServiceOptions) *QueryService {
	return netdist.NewService(opts)
}

// ConfigFingerprint is the cache and session key: a stable content hash
// of every behavior-determining configuration knob except the seed.
// Identical configurations collide across processes and recompilations;
// any knob change — even to a setting with provably identical results,
// like the event queue — produces a different fingerprint. It fails
// with an error for configurations that cannot cross a process boundary
// (an attached trace recorder).
func ConfigFingerprint(cfg SimConfig) (string, error) {
	return distrib.ConfigFingerprint(cfg)
}

// Experiment runs a registered paper artifact ("fig2b", "combined", ...)
// through this session: sweep cells execute on the session's warm
// workspaces and the run is bounded by ctx. Options fields Context and
// Session are overridden by the method's receiver and argument.
func (s *Session) Experiment(ctx context.Context, id string, o ExperimentOptions) (*ExperimentResult, error) {
	o.Context = ctx
	o.Session = s.Session
	e, err := experiment.ByID(id)
	if err != nil {
		return nil, err
	}
	return e.Run(o)
}

// RunScenario executes a scenario job through this session and shapes
// the outcome as a ScenarioResult (the merged-series result type the
// scenario CLI and the deprecated free function share). Like every
// scenario entry point it requires reps > 0; run a scenario Job through
// Session.Run directly for the Job semantics (0 means one replication,
// partial results on cancellation).
func (s *Session) RunScenario(ctx context.Context, cfg SimConfig, sc *Scenario, reps int, opts ...RunOption) (*ScenarioResult, error) {
	return experiment.RunScenarioWith(ctx, s.Session, cfg, sc, reps, opts...)
}

// defaultSession backs the deprecated free functions. It is created on
// first use and lives for the process: repeated Simulate calls reuse the
// same warm workspaces a Session user would.
var (
	defaultSessionOnce sync.Once
	defaultSessionVal  *Session
)

func defaultSession() *Session {
	defaultSessionOnce.Do(func() { defaultSessionVal = NewSession() })
	return defaultSessionVal
}
