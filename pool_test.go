package repro

import (
	"strings"
	"testing"
)

// Pool-safety determinism tests: the object-reuse fast paths (task pool,
// graph pool, instance/frame recycling, workspace reuse) must never
// change a simulation result. Each test runs the same experiment twice —
// pooling on (the default) and DisablePooling (the pure allocation
// reference path) — and requires byte-identical rendered output.

func TestPoolingBitIdenticalCombinedExperiment(t *testing.T) {
	opts := ExperimentOptions{Horizon: 3000, Reps: 2, Seed: 7}
	pooled, err := RunExperiment("combined", opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.DisablePooling = true
	ref, err := RunExperiment("combined", opts)
	if err != nil {
		t.Fatal(err)
	}
	pooledCSV := RenderCSV(pooled.Figure)
	refCSV := RenderCSV(ref.Figure)
	if pooledCSV != refCSV {
		t.Fatalf("combined CSV differs with pooling on vs off:\npooled:\n%s\nreference:\n%s",
			pooledCSV, refCSV)
	}
	if pooledCSV == "" {
		t.Fatal("combined experiment rendered an empty CSV")
	}
}

func TestPoolingBitIdenticalBurstScenario(t *testing.T) {
	cfg := BaselineConfig()
	cfg.Horizon = 15000
	sc, err := ScenarioPreset("burst", cfg.Horizon)
	if err != nil {
		t.Fatal(err)
	}
	const reps, parallel = 3, 4
	pooled, err := RunScenario(cfg, sc, reps, parallel)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DisablePooling = true
	ref, err := RunScenario(cfg, sc, reps, parallel)
	if err != nil {
		t.Fatal(err)
	}
	var pooledCSV, refCSV strings.Builder
	if err := pooled.Series.WriteCSV(&pooledCSV); err != nil {
		t.Fatal(err)
	}
	if err := ref.Series.WriteCSV(&refCSV); err != nil {
		t.Fatal(err)
	}
	if pooledCSV.String() != refCSV.String() {
		t.Fatal("burst scenario time-series CSV differs with pooling on vs off")
	}
	if pooled.GlobalMD != ref.GlobalMD || pooled.LocalMD != ref.LocalMD {
		t.Fatalf("miss estimates differ with pooling on vs off: %+v vs %+v",
			pooled.GlobalMD, ref.GlobalMD)
	}
}

// TestPoolingAbortPathBitIdentical exercises the trickiest recycling
// path: aborted global instances whose already-queued sibling subtasks
// drain later, delaying instance and graph reuse. The run must match the
// reference path exactly.
func TestPoolingAbortPathBitIdentical(t *testing.T) {
	cfg := BaselineConfig()
	cfg.Horizon = 8000
	cfg.Load = 0.8
	cfg.TardyAbort = true
	cfg.SSP = "EQF"
	cfg.PSP = "DIV-1"
	pooled, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DisablePooling = true
	ref, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pooled.GlobalDone != ref.GlobalDone || pooled.GlobalAborted != ref.GlobalAborted ||
		pooled.LocalDone != ref.LocalDone || pooled.LocalAborted != ref.LocalAborted ||
		pooled.MDGlobal() != ref.MDGlobal() || pooled.MDLocal() != ref.MDLocal() {
		t.Fatalf("abort-path metrics differ with pooling on vs off:\npooled %+v\nref    %+v",
			pooled, ref)
	}
}

// TestPooledRunnerRaceHammer drives the pooled parallel runner hard so
// `go test -race` can catch any cross-worker sharing of pooled state:
// workspaces are strictly per-worker, so there must be none. It also
// checks the fan-out still matches the sequential path bit for bit.
func TestPooledRunnerRaceHammer(t *testing.T) {
	cfg := BaselineConfig()
	cfg.Horizon = 1500
	const reps = 16
	seq, err := SimulateReplicationsParallel(cfg, reps, 1)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		par, err := SimulateReplicationsParallel(cfg, reps, 8)
		if err != nil {
			t.Fatal(err)
		}
		if par.LocalMD != seq.LocalMD || par.GlobalMD != seq.GlobalMD {
			t.Fatalf("round %d: parallel pooled estimates diverge from sequential: %+v vs %+v",
				round, par.GlobalMD, seq.GlobalMD)
		}
		for i := range par.Runs {
			if par.Runs[i].LocalDone != seq.Runs[i].LocalDone ||
				par.Runs[i].GlobalDone != seq.Runs[i].GlobalDone {
				t.Fatalf("round %d: replication %d differs across worker counts", round, i)
			}
		}
	}
}
